//! Spot allocation state machine.
//!
//! An *allocation* (the paper's atomic unit, Sec. 4) is a set of instances
//! of the same type acquired at the same time with the same bid. This
//! module tracks one allocation's lifecycle: running, warned (the
//! two-minute eviction notice has been issued), and terminated.

use proteus_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::instance::MarketKey;
use crate::provider::AllocationId;

/// Lifecycle state of a spot allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpotState {
    /// The request was granted but the instances have not booted yet
    /// (the boot-delay fault regime); nothing is billed until launch,
    /// and a price crossing during boot aborts the launch unbilled.
    Booting,
    /// Instances are running and the bid still covers the market price.
    Running,
    /// The market crossed above the bid; instances terminate at the
    /// embedded instant (crossing time plus the warning lead).
    WarningIssued {
        /// When the instances will actually be revoked.
        evict_at: SimTime,
    },
    /// Instances have been revoked or voluntarily terminated.
    Terminated,
}

/// One live spot allocation held by the customer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpotLease {
    /// Stable identifier.
    pub id: AllocationId,
    /// Which market the instances were bought in.
    pub market: MarketKey,
    /// Number of instances in the allocation.
    pub count: u32,
    /// The immutable bid price per instance-hour.
    pub bid: f64,
    /// When the allocation was granted (billing hours anchor here).
    pub granted_at: SimTime,
    /// When the instances become (or became) usable. Equals
    /// `granted_at` unless a boot-delay fault regime is active; for a
    /// delayed launch, billing hours re-anchor here when the instances
    /// come up.
    pub usable_at: SimTime,
    /// Scheduled warning-less death (the infant-mortality fault
    /// regime), if this grant is doomed.
    pub dies_at: Option<SimTime>,
    /// Start of the current billing hour.
    pub hour_start: SimTime,
    /// Dollars charged for the current billing hour (refunded if evicted).
    pub current_hour_charge: f64,
    /// Lifecycle state.
    pub state: SpotState,
}

impl SpotLease {
    /// Creates a freshly granted lease; the caller is responsible for
    /// recording the first hour's charge.
    pub fn new(
        id: AllocationId,
        market: MarketKey,
        count: u32,
        bid: f64,
        granted_at: SimTime,
        first_hour_charge: f64,
    ) -> Self {
        SpotLease {
            id,
            market,
            count,
            bid,
            granted_at,
            usable_at: granted_at,
            dies_at: None,
            hour_start: granted_at,
            current_hour_charge: first_hour_charge,
            state: SpotState::Running,
        }
    }

    /// Marks the lease as boot-delayed: not usable (and not billed)
    /// until `usable_at`.
    pub fn booting_until(mut self, usable_at: SimTime) -> Self {
        self.usable_at = usable_at;
        self.state = SpotState::Booting;
        self.current_hour_charge = 0.0;
        self
    }

    /// Schedules a warning-less death at `dies_at`.
    pub fn doomed_at(mut self, dies_at: SimTime) -> Self {
        self.dies_at = Some(dies_at);
        self
    }

    /// End of the current billing hour.
    pub fn hour_end(&self) -> SimTime {
        self.hour_start + SimDuration::from_hours(1)
    }

    /// Time remaining in the current billing hour at `now` (the paper's
    /// ωᵢ upper bound on useful compute).
    pub fn time_to_hour_end(&self, now: SimTime) -> SimDuration {
        self.hour_end().since(now.max(self.hour_start))
    }

    /// Whether the allocation is still running (possibly under warning).
    pub fn is_live(&self) -> bool {
        !matches!(self.state, SpotState::Terminated)
    }

    /// Whether an eviction warning is pending.
    pub fn is_warned(&self) -> bool {
        matches!(self.state, SpotState::WarningIssued { .. })
    }

    /// Whether the lease is granted but not yet usable.
    pub fn is_booting(&self) -> bool {
        matches!(self.state, SpotState::Booting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{catalog, Zone};

    fn lease(granted_ms: u64) -> SpotLease {
        SpotLease::new(
            AllocationId(1),
            MarketKey::new(catalog::c4_xlarge(), Zone(0)),
            4,
            0.10,
            SimTime::from_millis(granted_ms),
            0.20,
        )
    }

    #[test]
    fn hour_arithmetic_anchors_on_grant() {
        let l = lease(500);
        assert_eq!(
            l.hour_end(),
            SimTime::from_millis(500) + SimDuration::from_hours(1)
        );
        let mid = SimTime::from_millis(500) + SimDuration::from_mins(40);
        assert_eq!(l.time_to_hour_end(mid), SimDuration::from_mins(20));
    }

    #[test]
    fn time_to_hour_end_clamps_before_hour_start() {
        let l = lease(1_000_000);
        // Querying before the hour started yields the full hour.
        assert_eq!(
            l.time_to_hour_end(SimTime::EPOCH),
            SimDuration::from_hours(1)
        );
    }

    #[test]
    fn liveness_tracks_state() {
        let mut l = lease(0);
        assert!(l.is_live());
        assert!(!l.is_warned());
        l.state = SpotState::WarningIssued {
            evict_at: SimTime::from_millis(120_000),
        };
        assert!(l.is_live());
        assert!(l.is_warned());
        l.state = SpotState::Terminated;
        assert!(!l.is_live());
    }
}
