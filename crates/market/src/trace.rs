//! Spot-price traces as step functions over simulated time.
//!
//! A [`PriceTrace`] records every price change for one market; prices are
//! constant between changes (exactly how AWS publishes spot price
//! history). [`TraceSet`] bundles one trace per [`MarketKey`].

use std::collections::BTreeMap;

use proteus_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::instance::MarketKey;

/// A step-function price history for a single market.
///
/// Invariant: change points are strictly increasing in time and the trace
/// always has a point at or before any queried instant (builders insert an
/// initial price at the epoch).
///
/// # Examples
///
/// ```
/// use proteus_market::PriceTrace;
/// use proteus_simtime::SimTime;
///
/// let trace = PriceTrace::from_points(vec![
///     (SimTime::EPOCH, 0.05),
///     (SimTime::from_hours(2), 0.50),
/// ]).unwrap();
/// assert_eq!(trace.price_at(SimTime::from_hours(1)), 0.05);
/// assert_eq!(trace.price_at(SimTime::from_hours(3)), 0.50);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceTrace {
    /// (change time in ms, price) pairs, strictly increasing in time.
    points: Vec<(SimTime, f64)>,
}

impl PriceTrace {
    /// Builds a trace from change points.
    ///
    /// Returns `None` if `points` is empty, not strictly increasing in
    /// time, does not start at [`SimTime::EPOCH`], or contains a
    /// non-finite or non-positive price.
    pub fn from_points(points: Vec<(SimTime, f64)>) -> Option<Self> {
        if points.is_empty() || points[0].0 != SimTime::EPOCH {
            return None;
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return None;
            }
        }
        if points.iter().any(|(_, p)| !p.is_finite() || *p <= 0.0) {
            return None;
        }
        Some(PriceTrace { points })
    }

    /// A trace that holds one price forever (useful in tests).
    pub fn constant(price: f64) -> Self {
        PriceTrace {
            points: vec![(SimTime::EPOCH, price)],
        }
    }

    /// The price in effect at instant `t`.
    pub fn price_at(&self, t: SimTime) -> f64 {
        match self.points.binary_search_by(|(pt, _)| pt.cmp(&t)) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// The first instant strictly after `t` at which the price changes,
    /// with the new price; `None` if the price never changes again.
    pub fn next_change_after(&self, t: SimTime) -> Option<(SimTime, f64)> {
        let idx = self.points.partition_point(|(pt, _)| *pt <= t);
        self.points.get(idx).copied()
    }

    /// The first instant in `(after, horizon]` at which the price strictly
    /// exceeds `bid`; `None` if the price stays at or below `bid`.
    ///
    /// If the price already exceeds `bid` at `after`, returns `after`.
    pub fn first_crossing_above(
        &self,
        bid: f64,
        after: SimTime,
        horizon: SimTime,
    ) -> Option<SimTime> {
        if self.price_at(after) > bid {
            return Some(after);
        }
        let mut t = after;
        while let Some((ct, price)) = self.next_change_after(t) {
            if ct > horizon {
                return None;
            }
            if price > bid {
                return Some(ct);
            }
            t = ct;
        }
        None
    }

    /// All change points (including the initial price at the epoch).
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The last instant covered by an explicit change point.
    pub fn last_change(&self) -> SimTime {
        self.points
            .last()
            .map(|(t, _)| *t)
            .unwrap_or(SimTime::EPOCH)
    }

    /// Samples the trace every `step` over `[from, to]` — convenient for
    /// plotting (Fig. 3) and for the β-estimation simulations.
    pub fn sample(&self, from: SimTime, to: SimTime, step: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero(), "sample step must be positive");
        let mut out = Vec::new();
        let mut t = from;
        while t <= to {
            out.push((t, self.price_at(t)));
            t += step;
        }
        out
    }

    /// The time-weighted mean price over `[from, to]`.
    pub fn mean_price(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(to > from, "mean_price needs a non-empty interval");
        let mut acc = 0.0f64;
        let mut t = from;
        let mut price = self.price_at(from);
        while let Some((ct, next_price)) = self.next_change_after(t) {
            if ct >= to {
                break;
            }
            acc += price * (ct - t).as_hours_f64();
            t = ct;
            price = next_price;
        }
        acc += price * (to - t).as_hours_f64();
        acc / (to - from).as_hours_f64()
    }

    /// Fraction of `[from, to]` during which the price exceeds `level`.
    pub fn fraction_above(&self, level: f64, from: SimTime, to: SimTime) -> f64 {
        assert!(to > from, "fraction_above needs a non-empty interval");
        let mut above = SimDuration::ZERO;
        let mut t = from;
        let mut price = self.price_at(from);
        loop {
            let seg_end = match self.next_change_after(t) {
                Some((ct, _)) if ct < to => ct,
                _ => to,
            };
            if price > level {
                above += seg_end - t;
            }
            if seg_end == to {
                break;
            }
            price = self.price_at(seg_end);
            t = seg_end;
        }
        above.as_hours_f64() / (to - from).as_hours_f64()
    }
}

/// One price trace per market.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceSet {
    traces: BTreeMap<MarketKey, PriceTrace>,
}

impl TraceSet {
    /// An empty trace set.
    pub fn new() -> Self {
        TraceSet::default()
    }

    /// Registers (or replaces) the trace for `key`.
    pub fn insert(&mut self, key: MarketKey, trace: PriceTrace) {
        self.traces.insert(key, trace);
    }

    /// The trace for `key`, if registered.
    pub fn get(&self, key: &MarketKey) -> Option<&PriceTrace> {
        self.traces.get(key)
    }

    /// Every registered market key.
    pub fn markets(&self) -> impl Iterator<Item = &MarketKey> {
        self.traces.keys()
    }

    /// Number of registered markets.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether no markets are registered.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }
}

// Borrow-or-own conversions so consumers (notably `CloudProvider`) can
// accept either an owned set or a shared reference without cloning the
// underlying traces.
impl<'a> From<TraceSet> for std::borrow::Cow<'a, TraceSet> {
    fn from(set: TraceSet) -> Self {
        std::borrow::Cow::Owned(set)
    }
}

impl<'a> From<&'a TraceSet> for std::borrow::Cow<'a, TraceSet> {
    fn from(set: &'a TraceSet) -> Self {
        std::borrow::Cow::Borrowed(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{catalog, Zone};

    fn stepped() -> PriceTrace {
        PriceTrace::from_points(vec![
            (SimTime::EPOCH, 0.05),
            (SimTime::from_hours(1), 0.10),
            (SimTime::from_hours(2), 0.50),
            (SimTime::from_hours(3), 0.05),
        ])
        .expect("valid trace")
    }

    #[test]
    fn rejects_malformed_traces() {
        assert!(PriceTrace::from_points(vec![]).is_none());
        // Must start at epoch.
        assert!(PriceTrace::from_points(vec![(SimTime::from_hours(1), 0.1)]).is_none());
        // Strictly increasing.
        assert!(
            PriceTrace::from_points(vec![(SimTime::EPOCH, 0.1), (SimTime::EPOCH, 0.2),]).is_none()
        );
        // Positive finite prices.
        assert!(PriceTrace::from_points(vec![(SimTime::EPOCH, 0.0)]).is_none());
        assert!(PriceTrace::from_points(vec![(SimTime::EPOCH, f64::NAN)]).is_none());
    }

    #[test]
    fn price_at_is_right_continuous_step() {
        let t = stepped();
        assert_eq!(t.price_at(SimTime::EPOCH), 0.05);
        assert_eq!(t.price_at(SimTime::from_millis(1)), 0.05);
        assert_eq!(t.price_at(SimTime::from_hours(1)), 0.10);
        assert_eq!(t.price_at(SimTime::from_hours(4)), 0.05);
    }

    #[test]
    fn next_change_after_walks_points() {
        let t = stepped();
        assert_eq!(
            t.next_change_after(SimTime::EPOCH),
            Some((SimTime::from_hours(1), 0.10))
        );
        assert_eq!(t.next_change_after(SimTime::from_hours(3)), None);
    }

    #[test]
    fn first_crossing_detects_spike() {
        let t = stepped();
        // Bid 0.2: crossed when price jumps to 0.5 at hour 2.
        assert_eq!(
            t.first_crossing_above(0.2, SimTime::EPOCH, SimTime::from_hours(10)),
            Some(SimTime::from_hours(2))
        );
        // Bid 1.0: never crossed.
        assert_eq!(
            t.first_crossing_above(1.0, SimTime::EPOCH, SimTime::from_hours(10)),
            None
        );
        // Already above bid at query time.
        assert_eq!(
            t.first_crossing_above(0.2, SimTime::from_hours(2), SimTime::from_hours(10)),
            Some(SimTime::from_hours(2))
        );
        // Horizon cuts off the crossing.
        assert_eq!(
            t.first_crossing_above(0.2, SimTime::EPOCH, SimTime::from_hours(1)),
            None
        );
    }

    #[test]
    fn mean_price_weights_by_time() {
        let t = stepped();
        // Hours 0-2: 0.05 then 0.10 → mean 0.075.
        let m = t.mean_price(SimTime::EPOCH, SimTime::from_hours(2));
        assert!((m - 0.075).abs() < 1e-9);
    }

    #[test]
    fn fraction_above_measures_spike_width() {
        let t = stepped();
        let frac = t.fraction_above(0.2, SimTime::EPOCH, SimTime::from_hours(4));
        assert!((frac - 0.25).abs() < 1e-9);
    }

    #[test]
    fn trace_set_round_trip() {
        let mut set = TraceSet::new();
        let key = MarketKey::new(catalog::c4_xlarge(), Zone(0));
        assert!(set.is_empty());
        set.insert(key, PriceTrace::constant(0.05));
        assert_eq!(set.len(), 1);
        assert_eq!(set.get(&key).unwrap().price_at(SimTime::EPOCH), 0.05);
        assert!(set.markets().any(|k| *k == key));
    }

    #[test]
    fn sample_covers_inclusive_range() {
        let t = stepped();
        let samples = t.sample(
            SimTime::EPOCH,
            SimTime::from_hours(2),
            SimDuration::from_hours(1),
        );
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[2], (SimTime::from_hours(2), 0.50));
    }
}
