//! Property-based invariants of the market billing engine: whatever the
//! trace and bidding behavior, the ledger must stay internally
//! consistent.

use proptest::prelude::*;
use proteus_market::{
    catalog, CloudProvider, LedgerKind, MarketKey, MarketModel, PriceTrace, TraceGenerator,
    TraceSet, Zone,
};
use proteus_simtime::{SimDuration, SimTime};

fn market() -> MarketKey {
    MarketKey::new(catalog::c4_xlarge(), Zone(0))
}

/// A provider over a generated trace for the given seed/model.
fn provider(seed: u64, volatile: bool) -> CloudProvider<'static> {
    let model = if volatile {
        MarketModel::volatile()
    } else {
        MarketModel::default()
    };
    let gen = TraceGenerator::new(seed, model);
    let mut set = TraceSet::new();
    set.insert(
        market(),
        gen.generate(market(), SimDuration::from_hours(24 * 3)),
    );
    CloudProvider::new(set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Refunds never exceed charges for any allocation, and the net cost
    /// is never negative — no sequence of grants, evictions, and
    /// advances can mint money.
    #[test]
    fn refunds_never_exceed_charges(
        seed in 0u64..500,
        volatile in any::<bool>(),
        delta in 0.0005f64..0.2,
        count in 1u32..16,
        hold_hours in 1u64..10,
    ) {
        let mut p = provider(seed, volatile);
        let price = p.spot_price(market()).expect("trace covers epoch");
        let _id = p.request_spot(market(), count, price + delta).expect("bid >= market");
        p.advance_to(SimTime::from_hours(hold_hours)).expect("forward");

        let account = p.account();
        prop_assert!(account.total_cost() >= -1e-9, "net cost {}", account.total_cost());
        let charges: f64 = account
            .entries()
            .iter()
            .filter(|e| e.amount > 0.0)
            .map(|e| e.amount)
            .sum();
        prop_assert!(account.total_refunds() <= charges + 1e-9);
    }

    /// Usage accounting: free hours only exist when a refund exists, and
    /// total usage time never exceeds instances × wall time.
    #[test]
    fn usage_is_bounded_and_consistent(
        seed in 0u64..500,
        delta in 0.0005f64..0.1,
        count in 1u32..8,
        hold_hours in 1u64..8,
    ) {
        let mut p = provider(seed, true);
        let price = p.spot_price(market()).expect("covered");
        let id = p.request_spot(market(), count, price + delta).expect("granted").id;
        p.advance_to(SimTime::from_hours(hold_hours)).expect("forward");
        if p.spot_allocation(id).is_some() {
            p.terminate(id).expect("live allocation terminates");
        }

        let usage = *p.account().usage();
        let wall = hold_hours as f64 * f64::from(count);
        prop_assert!(usage.total_hours() <= wall + 1e-6,
            "usage {} vs wall {}", usage.total_hours(), wall);
        if usage.free_hours > 0.0 {
            prop_assert!(
                p.account().total_refunds() > 0.0,
                "free hours imply a refund"
            );
        }
        // Paid spot hours must be covered by positive spot charges.
        let spot_charges: f64 = p
            .account()
            .entries()
            .iter()
            .filter(|e| e.kind == LedgerKind::SpotHour)
            .map(|e| e.amount)
            .sum();
        if usage.spot_paid_hours > 0.0 {
            prop_assert!(spot_charges > 0.0);
        }
    }

    /// Advancing in many small steps bills identically to one big jump —
    /// the discrete-event engine is step-size independent.
    #[test]
    fn billing_is_step_size_independent(
        seed in 0u64..200,
        delta in 0.001f64..0.1,
        count in 1u32..4,
    ) {
        let run = |steps: u64| -> (f64, f64) {
            let mut p = provider(seed, true);
            let price = p.spot_price(market()).expect("covered");
            let _ = p.request_spot(market(), count, price + delta).expect("granted");
            let total = SimDuration::from_hours(6);
            for i in 1..=steps {
                p.advance_to(SimTime::EPOCH + (total / steps) * i).expect("forward");
            }
            (p.account().total_cost(), p.account().usage().total_hours())
        };
        let (cost_one, hours_one) = run(1);
        let (cost_many, hours_many) = run(180);
        prop_assert!((cost_one - cost_many).abs() < 1e-9,
            "cost {} vs {}", cost_one, cost_many);
        prop_assert!((hours_one - hours_many).abs() < 1e-9);
    }

    /// The scripted-trace path agrees with hand arithmetic: holding
    /// through `n` hours of a constant-price market costs exactly
    /// `n × price × count`.
    #[test]
    fn constant_market_bills_linearly(
        price in 0.01f64..0.5,
        count in 1u32..10,
        hours in 1u64..12,
    ) {
        let mut set = TraceSet::new();
        set.insert(market(), PriceTrace::constant(price));
        let mut p = CloudProvider::new(set);
        let _ = p.request_spot(market(), count, price + 1.0).expect("granted");
        p.advance_to(SimTime::from_hours(hours)).expect("forward");
        let expect = price * f64::from(count) * hours as f64
            + price * f64::from(count); // Hour `hours` charged at its boundary.
        prop_assert!((p.account().total_cost() - expect).abs() < 1e-9,
            "cost {} vs {}", p.account().total_cost(), expect);
    }
}
