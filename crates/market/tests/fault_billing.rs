//! Property-based billing invariants under arbitrary fault plans: no
//! combination of capacity droughts, throttling, boot delays, and
//! infant mortality may bend the ledger. Refused requests never bill,
//! boot windows never bill, and refunds never exceed charges —
//! per-allocation and in aggregate.

use std::collections::BTreeMap;

use proptest::prelude::*;
use proteus_market::{
    catalog, AllocationId, CloudProvider, LedgerKind, MarketError, MarketFaultPlan, MarketKey,
    MarketModel, TraceGenerator, TraceSet, Zone,
};
use proteus_simtime::{SimDuration, SimTime};

fn market() -> MarketKey {
    MarketKey::new(catalog::c4_xlarge(), Zone(0))
}

fn provider(seed: u64) -> CloudProvider<'static> {
    let gen = TraceGenerator::new(seed, MarketModel::volatile());
    let mut set = TraceSet::new();
    set.insert(
        market(),
        gen.generate(market(), SimDuration::from_hours(24 * 3)),
    );
    CloudProvider::new(set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Billing conservation under any fault plan: drive a request loop
    /// through a drought window with throttling, boot delays, and
    /// infant mortality all armed, and check that
    ///
    /// * a refused request (capacity or throttle) adds no ledger entry,
    /// * no allocation is billed before it becomes usable (boot
    ///   windows, and launches aborted by a bid crossing, are free),
    /// * eviction refunds never exceed an allocation's charges, so the
    ///   net cost is non-negative per allocation and in total,
    /// * the fault counters agree with the typed errors the caller saw.
    #[test]
    fn faulty_markets_never_bend_the_ledger(
        trace_seed in 0u64..200,
        fault_seed in 0u64..200,
        cap in 0u32..4,
        drought_from in 0u64..6,
        drought_hours in 1u64..12,
        throttle_p in 0.0f64..0.6,
        boot_max_mins in 1u64..90,
        infant_p in 0.0f64..0.6,
        infant_mins in 1u64..50,
        count in 1u32..6,
        delta in 0.001f64..0.3,
        hold_hours in 2u64..14,
    ) {
        let plan = MarketFaultPlan::new(fault_seed)
            .with_drought(
                SimTime::from_hours(drought_from),
                SimTime::from_hours(drought_from + drought_hours),
                cap,
            )
            .with_throttle(throttle_p, SimDuration::from_mins(5))
            .with_boot_delay(SimDuration::ZERO, SimDuration::from_mins(boot_max_mins))
            .with_infant_mortality(infant_p, SimDuration::from_mins(infant_mins));
        let mut p = provider(trace_seed);
        p.set_fault_plan(plan.clone());

        let mut usable: BTreeMap<AllocationId, SimTime> = BTreeMap::new();
        let mut seen_capacity = 0u64;
        let mut seen_throttle = 0u64;
        for h in 0..hold_hours {
            let now = SimTime::from_hours(h);
            let price = p.spot_price(market()).expect("trace covers the run");
            let before = p.account().entries().len();
            let live_before: u32 = p.spot_allocations().iter().map(|a| a.count).sum();
            match p.request_spot(market(), count, price + delta) {
                Ok(grant) => {
                    prop_assert!(grant.granted >= 1 && grant.granted <= count);
                    prop_assert!(grant.usable_at >= now);
                    // The drought cap gates new grants on live headroom
                    // (boot included); leases predating the window are
                    // not evicted, so the cap binds the grant, not the
                    // total.
                    if let Some(limit) = plan.capacity_limit(market(), now) {
                        prop_assert!(
                            grant.granted <= limit.saturating_sub(live_before),
                            "grant {} exceeds headroom {} under cap {limit}",
                            grant.granted,
                            limit.saturating_sub(live_before),
                        );
                    }
                    usable.insert(grant.id, grant.usable_at);
                }
                Err(MarketError::InsufficientCapacity { available, .. }) => {
                    prop_assert_eq!(available, 0, "non-zero headroom must partially grant");
                    prop_assert_eq!(p.account().entries().len(), before,
                        "a capacity refusal billed something");
                    let limit = plan
                        .capacity_limit(market(), now)
                        .expect("refusals only come from an active cap");
                    prop_assert!(live_before >= limit,
                        "refused with headroom: live {live_before} cap {limit}");
                    seen_capacity += 1;
                }
                Err(MarketError::RequestLimitExceeded { retry_after }) => {
                    prop_assert!(retry_after > SimDuration::ZERO);
                    prop_assert_eq!(p.account().entries().len(), before,
                        "a throttled request billed something");
                    seen_throttle += 1;
                }
                Err(other) => prop_assert!(false, "unexpected refusal: {other}"),
            }
            p.advance_to(SimTime::from_hours(h + 1)).expect("forward");
        }
        for a in p.spot_allocations() {
            p.terminate(a.id).expect("live allocation terminates");
        }

        // No allocation billed before its launch; refunds covered by
        // charges allocation-by-allocation.
        let mut net: BTreeMap<AllocationId, f64> = BTreeMap::new();
        for e in p.account().entries() {
            if let Some(&usable_at) = usable.get(&e.allocation) {
                prop_assert!(e.time >= usable_at,
                    "entry {:?} predates launch at {:?}", e, usable_at);
            }
            if e.kind != LedgerKind::OnDemandHour {
                *net.entry(e.allocation).or_insert(0.0) += e.amount;
            }
        }
        for (id, total) in &net {
            prop_assert!(*total >= -1e-9, "allocation {id:?} netted {total}");
        }
        let account = p.account();
        prop_assert!(account.total_cost() >= -1e-9);
        let charges: f64 = account
            .entries()
            .iter()
            .filter(|e| e.amount > 0.0)
            .map(|e| e.amount)
            .sum();
        prop_assert!(account.total_refunds() <= charges + 1e-9);

        // Typed errors and fault counters tell the same story.
        let stats = p.fault_stats().expect("plan installed");
        prop_assert_eq!(stats.capacity_refusals, seen_capacity);
        prop_assert_eq!(stats.throttled, seen_throttle);
    }
}
