//! The contract between an ML application and the training runtime.

use proteus_ps::{DenseVec, ParamKey};
use rand::rngs::StdRng;

/// A read-only view of the current parameter state, supplied by whichever
/// runtime is executing the application (the sequential trainer or an
/// AgileML worker backed by its cache).
pub trait ParamReader {
    /// The current value of `key`, or its initial value if the runtime has
    /// not materialized it yet.
    fn get(&self, key: ParamKey) -> DenseVec;
}

/// Blanket implementation so closures can serve as readers in tests.
impl<F: Fn(ParamKey) -> DenseVec> ParamReader for F {
    fn get(&self, key: ParamKey) -> DenseVec {
        self(key)
    }
}

/// An iterative-convergent ML application runnable by Proteus.
///
/// Solution state lives entirely in the parameter server (the paper's
/// stateless-worker design, Sec. 7); each datum may carry mutable
/// *scratch* state (e.g. LDA's per-token topic assignments) that is cheap
/// to reconstruct when a data partition is re-loaded after an eviction.
pub trait MlApp: Send + Sync + 'static {
    /// One training item. `Sync` because the full dataset is shared
    /// (read-only, like S3) across node threads; workers mutate only
    /// their loaded copies.
    type Datum: Clone + Send + Sync + 'static;

    /// Total number of parameter keys used by the model.
    fn key_count(&self) -> u64;

    /// The dimension of the value stored under `key`.
    fn value_dim(&self, key: ParamKey) -> usize;

    /// The initial value for `key` (called once at job start).
    fn init_value(&self, key: ParamKey, rng: &mut StdRng) -> DenseVec;

    /// The parameter keys needed to process `datum`.
    fn keys_for(&self, datum: &Self::Datum) -> Vec<ParamKey>;

    /// Processes one datum against the current parameters, returning the
    /// (commutative, additive) updates to apply.
    ///
    /// `rng` supplies any sampling the algorithm needs (Gibbs sampling,
    /// dropout, ...); `datum` is mutable for per-datum scratch state.
    fn process(
        &self,
        datum: &mut Self::Datum,
        params: &dyn ParamReader,
        rng: &mut StdRng,
    ) -> Vec<(ParamKey, DenseVec)>;

    /// The goodness-of-solution objective over a dataset — *lower is
    /// better* for every bundled app (loss or negative log-likelihood).
    fn objective(&self, data: &[Self::Datum], params: &dyn ParamReader) -> f64;
}
