//! Synthetic dataset generators with the statistical structure of the
//! paper's corpora, at laptop scale.
//!
//! The paper evaluates on Netflix ratings (a sparse low-rank-ish matrix),
//! ImageNet LLC features (high-dimensional multi-class examples), and the
//! NYTimes corpus (topic-mixture documents). None are redistributable, so
//! these generators sample from the corresponding generative models; the
//! applications must actually recover structure from them, keeping every
//! convergence test honest.

use proteus_simtime::rng::seeded_stream;
use rand::Rng;

use crate::lda::LdaDoc;
use crate::mf::Rating;
use crate::mlr::Example;

/// Dataset-size multiplier read from the `PROTEUS_DATA_SCALE`
/// environment variable (default 1, minimum 1).
///
/// The default corpora are laptop-scale so the test suite stays fast;
/// benchmarks and soak runs set `PROTEUS_DATA_SCALE=N` to grow every
/// generator's *count* dimension (observed ratings, examples, documents)
/// N-fold without touching the statistical structure. Generators stay
/// deterministic for a fixed `(seed, scale)` pair.
pub fn data_scale() -> usize {
    std::env::var("PROTEUS_DATA_SCALE")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// Parameters for the Netflix-like sparse rating matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MfDataConfig {
    /// Number of rows (users).
    pub rows: u32,
    /// Number of columns (items).
    pub cols: u32,
    /// Ground-truth rank of the latent structure.
    pub true_rank: usize,
    /// Number of observed entries to sample.
    pub observed: usize,
    /// Additive observation noise scale.
    pub noise: f32,
}

impl Default for MfDataConfig {
    fn default() -> Self {
        MfDataConfig {
            rows: 200,
            cols: 100,
            true_rank: 4,
            observed: 4000 * data_scale(),
            noise: 0.05,
        }
    }
}

/// Samples a sparse matrix with low-rank structure plus noise.
///
/// Entries are `u_iᵀ v_j + ε`, with latent factors drawn uniform in
/// `[-1, 1] / √rank` so values stay O(1).
pub fn netflix_like(config: &MfDataConfig, seed: u64) -> Vec<Rating> {
    let mut rng = seeded_stream(seed, 0xF00D);
    let scale = 1.0 / (config.true_rank as f32).sqrt();
    let factor = |rng: &mut rand::rngs::StdRng| -> Vec<f32> {
        (0..config.true_rank)
            .map(|_| rng.gen_range(-1.0..1.0) * scale)
            .collect()
    };
    let users: Vec<Vec<f32>> = (0..config.rows).map(|_| factor(&mut rng)).collect();
    let items: Vec<Vec<f32>> = (0..config.cols).map(|_| factor(&mut rng)).collect();

    (0..config.observed)
        .map(|_| {
            let row = rng.gen_range(0..config.rows);
            let col = rng.gen_range(0..config.cols);
            let dot: f32 = users[row as usize]
                .iter()
                .zip(items[col as usize].iter())
                .map(|(a, b)| a * b)
                .sum();
            let noise = rng.gen_range(-config.noise..config.noise);
            Rating {
                row,
                col,
                value: dot + noise,
            }
        })
        .collect()
}

/// Parameters for the ImageNet-like classification set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlrDataConfig {
    /// Number of examples.
    pub examples: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Number of classes.
    pub classes: u32,
    /// Distance between class centers (larger = easier).
    pub separation: f32,
    /// Within-class noise scale.
    pub noise: f32,
}

impl Default for MlrDataConfig {
    fn default() -> Self {
        MlrDataConfig {
            examples: 600 * data_scale(),
            dim: 16,
            classes: 4,
            separation: 2.0,
            noise: 0.6,
        }
    }
}

/// Samples labelled examples from Gaussian-ish class clusters.
pub fn imagenet_like(config: &MlrDataConfig, seed: u64) -> Vec<Example> {
    let mut rng = seeded_stream(seed, 0xCAFE);
    let centers: Vec<Vec<f32>> = (0..config.classes)
        .map(|_| {
            (0..config.dim)
                .map(|_| rng.gen_range(-1.0..1.0) * config.separation)
                .collect()
        })
        .collect();
    (0..config.examples)
        .map(|i| {
            let label = (i as u32) % config.classes;
            let center = &centers[label as usize];
            let features = center
                .iter()
                .map(|c| c + approx_gaussian(&mut rng) * config.noise)
                .collect();
            Example { features, label }
        })
        .collect()
}

/// Parameters for the NYTimes-like topic-model corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LdaDataConfig {
    /// Number of documents.
    pub docs: usize,
    /// Vocabulary size.
    pub vocab: u32,
    /// Number of ground-truth topics.
    pub true_topics: usize,
    /// Tokens per document.
    pub doc_len: usize,
    /// Concentration of each document on its main topic (0–1).
    pub topic_purity: f64,
}

impl Default for LdaDataConfig {
    fn default() -> Self {
        LdaDataConfig {
            docs: 60 * data_scale(),
            vocab: 100,
            true_topics: 5,
            doc_len: 40,
            topic_purity: 0.85,
        }
    }
}

/// Samples documents from an LDA-style generative process: each topic
/// owns a contiguous slice of the vocabulary, each document mixes one
/// dominant topic with background noise.
pub fn nytimes_like(config: &LdaDataConfig, seed: u64, model_topics: usize) -> Vec<LdaDoc> {
    let mut rng = seeded_stream(seed, 0xD0C5);
    let words_per_topic = (config.vocab as usize / config.true_topics).max(1);
    (0..config.docs)
        .map(|d| {
            let main_topic = d % config.true_topics;
            let words: Vec<u32> = (0..config.doc_len)
                .map(|_| {
                    let topic = if rng.gen_bool(config.topic_purity) {
                        main_topic
                    } else {
                        rng.gen_range(0..config.true_topics)
                    };
                    let lo = (topic * words_per_topic) as u32;
                    let hi = (((topic + 1) * words_per_topic) as u32).min(config.vocab);
                    rng.gen_range(lo..hi.max(lo + 1))
                })
                .collect();
            LdaDoc::new(words, model_topics)
        })
        .collect()
}

/// A cheap approximately-Gaussian draw (sum of uniforms, Irwin–Hall).
fn approx_gaussian(rng: &mut rand::rngs::StdRng) -> f32 {
    let s: f32 = (0..6).map(|_| rng.gen_range(-0.5f32..0.5)).sum();
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netflix_like_is_deterministic_and_in_range() {
        let cfg = MfDataConfig::default();
        let a = netflix_like(&cfg, 1);
        let b = netflix_like(&cfg, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.observed);
        assert!(a.iter().all(|r| r.row < cfg.rows && r.col < cfg.cols));
        // Low-rank + small noise keeps entries O(1).
        assert!(a.iter().all(|r| r.value.abs() < 5.0));
    }

    #[test]
    fn different_seeds_give_different_data() {
        let cfg = MfDataConfig::default();
        assert_ne!(netflix_like(&cfg, 1), netflix_like(&cfg, 2));
    }

    #[test]
    fn imagenet_like_balances_labels() {
        let cfg = MlrDataConfig {
            examples: 400,
            classes: 4,
            ..MlrDataConfig::default()
        };
        let data = imagenet_like(&cfg, 3);
        assert_eq!(data.len(), 400);
        for k in 0..4u32 {
            let n = data.iter().filter(|e| e.label == k).count();
            assert_eq!(n, 100);
        }
        assert!(data.iter().all(|e| e.features.len() == cfg.dim));
    }

    #[test]
    fn nytimes_like_respects_vocab_and_length() {
        let cfg = LdaDataConfig::default();
        let docs = nytimes_like(&cfg, 5, 5);
        assert_eq!(docs.len(), cfg.docs);
        for d in &docs {
            assert_eq!(d.words.len(), cfg.doc_len);
            assert!(d.words.iter().all(|&w| w < cfg.vocab));
            assert!(!d.initialized());
            assert_eq!(d.doc_topics.len(), 5);
        }
    }

    #[test]
    fn topic_structure_is_present() {
        // Documents with the same dominant topic should share much more
        // vocabulary than documents from different topics.
        let cfg = LdaDataConfig {
            docs: 10,
            true_topics: 2,
            topic_purity: 1.0,
            ..LdaDataConfig::default()
        };
        let docs = nytimes_like(&cfg, 7, 2);
        let vocab_of =
            |d: &LdaDoc| -> std::collections::BTreeSet<u32> { d.words.iter().copied().collect() };
        // Docs 0 and 2 share topic 0; docs 0 and 1 differ.
        let same = vocab_of(&docs[0]).intersection(&vocab_of(&docs[2])).count();
        let diff = vocab_of(&docs[0]).intersection(&vocab_of(&docs[1])).count();
        assert!(
            same > diff,
            "same-topic overlap {same} <= cross-topic {diff}"
        );
    }
}
