//! K-means clustering via mini-batch commutative updates.
//!
//! K-means is one of the stateless-worker applications the paper lists
//! as natural parameter-server workloads (Sec. 3.2). The Lloyd's-style
//! update is expressed additively so it composes with the PS's
//! commutative merge: key `k` stores `[sum_0..sum_{d-1}, count]` for
//! cluster `k` — the running sum of points assigned to the cluster plus
//! the assignment count. A centroid is the stored sum divided by the
//! stored count; workers assign each point to the nearest current
//! centroid and emit pure `(point, +1)` accumulation deltas (online
//! mini-batch K-means with an implicit `1/n` step size). Accumulation
//! is exactly commutative and — unlike decay-style forgetting — safe
//! under the stale reads inherent to asynchronous parameter servers:
//! no combination of concurrent updates can drive a cluster's mass
//! negative.

use proteus_ps::{kernels, DenseVec, ParamKey};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::app::{MlApp, ParamReader};

/// One data point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Coordinates of dimension `KmConfig::dim`.
    pub coords: Vec<f32>,
}

/// Configuration for [`KMeans`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KmConfig {
    /// Point dimension `d`.
    pub dim: usize,
    /// Number of clusters `K`.
    pub clusters: u32,
    /// Scale of the random centroid initialization.
    pub init_scale: f32,
}

impl Default for KmConfig {
    fn default() -> Self {
        KmConfig {
            dim: 4,
            clusters: 3,
            init_scale: 1.0,
        }
    }
}

/// The K-means application.
#[derive(Debug, Clone)]
pub struct KMeans {
    config: KmConfig,
}

impl KMeans {
    /// Creates a K-means app with the given configuration.
    pub fn new(config: KmConfig) -> Self {
        KMeans { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &KmConfig {
        &self.config
    }

    /// The centroid encoded in a stored value (`None` when the cluster
    /// has no accumulated mass yet).
    pub fn centroid(value: &DenseVec) -> Option<Vec<f32>> {
        let s = value.as_slice();
        let count = *s.last()?;
        if count <= f32::EPSILON {
            return None;
        }
        Some(s[..s.len() - 1].iter().map(|x| x / count).collect())
    }

    /// Index of the nearest cluster to `coords` under the parameters.
    pub fn assign(&self, coords: &[f32], params: &dyn ParamReader) -> u32 {
        let mut best = (0u32, f64::INFINITY);
        for k in 0..self.config.clusters {
            let value = params.get(ParamKey(u64::from(k)));
            let center = match Self::centroid(&value) {
                Some(c) => c,
                // Empty cluster: treat its (implicit) random-init sum as
                // a unit-count centroid so it can attract points.
                None => value.as_slice()[..self.config.dim].to_vec(),
            };
            let d2 = kernels::dist_sq(coords, &center);
            if d2 < best.1 {
                best = (k, d2);
            }
        }
        best.0
    }
}

impl MlApp for KMeans {
    type Datum = Point;

    fn key_count(&self) -> u64 {
        u64::from(self.config.clusters)
    }

    fn value_dim(&self, _key: ParamKey) -> usize {
        self.config.dim + 1 // Sums plus the count slot.
    }

    fn init_value(&self, _key: ParamKey, rng: &mut StdRng) -> DenseVec {
        // A random unit-mass pseudo-point seeds each cluster.
        let s = self.config.init_scale;
        let mut v: Vec<f32> = (0..self.config.dim).map(|_| rng.gen_range(-s..s)).collect();
        v.push(1.0);
        DenseVec::from(v)
    }

    fn keys_for(&self, _datum: &Point) -> Vec<ParamKey> {
        (0..u64::from(self.config.clusters)).map(ParamKey).collect()
    }

    fn process(
        &self,
        datum: &mut Point,
        params: &dyn ParamReader,
        _rng: &mut StdRng,
    ) -> Vec<(ParamKey, DenseVec)> {
        let k = self.assign(&datum.coords, params);
        let key = ParamKey(u64::from(k));

        // Pure accumulation: add the point to its cluster's running sum
        // and bump the count. The centroid sum/count then tracks the
        // mean of every assignment so far (an implicit 1/n step size).
        let mut delta: Vec<f32> = datum.coords.clone();
        delta.push(1.0);
        vec![(key, DenseVec::from(delta))]
    }

    /// Mean squared distance of each point to its assigned centroid
    /// (the K-means distortion; lower is better).
    fn objective(&self, data: &[Point], params: &dyn ParamReader) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let total: f64 = data
            .iter()
            .map(|p| {
                let k = self.assign(&p.coords, params);
                let value = params.get(ParamKey(u64::from(k)));
                let center = KMeans::centroid(&value)
                    .unwrap_or_else(|| value.as_slice()[..self.config.dim].to_vec());
                kernels::dist_sq(&p.coords, &center)
            })
            .sum();
        total / data.len() as f64
    }
}

/// Samples points from `clusters` well-separated Gaussian-ish blobs.
pub fn blobs(
    points: usize,
    dim: usize,
    clusters: u32,
    separation: f32,
    noise: f32,
    seed: u64,
) -> Vec<Point> {
    let mut rng = proteus_simtime::rng::seeded_stream(seed, 0xB10B);
    let centers: Vec<Vec<f32>> = (0..clusters)
        .map(|_| {
            (0..dim)
                .map(|_| rng.gen_range(-1.0..1.0) * separation)
                .collect()
        })
        .collect();
    (0..points)
        .map(|i| {
            let c = &centers[(i as u32 % clusters) as usize];
            Point {
                coords: c
                    .iter()
                    .map(|x| {
                        let g: f32 = (0..6).map(|_| rng.gen_range(-0.5f32..0.5)).sum();
                        x + g * noise
                    })
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialTrainer;
    use proteus_simtime::rng::seeded;
    use std::collections::HashMap;

    struct MapReader(HashMap<ParamKey, DenseVec>, usize);

    impl ParamReader for MapReader {
        fn get(&self, key: ParamKey) -> DenseVec {
            self.0
                .get(&key)
                .cloned()
                .unwrap_or_else(|| DenseVec::zeros(self.1))
        }
    }

    #[test]
    fn centroid_decoding() {
        // Sum (2, 4) with count 2 → centroid (1, 2).
        let v = DenseVec::from(vec![2.0, 4.0, 2.0]);
        assert_eq!(KMeans::centroid(&v), Some(vec![1.0, 2.0]));
        assert_eq!(KMeans::centroid(&DenseVec::from(vec![1.0, 1.0, 0.0])), None);
    }

    #[test]
    fn assignment_picks_nearest_cluster() {
        let app = KMeans::new(KmConfig {
            dim: 1,
            clusters: 2,
            ..KmConfig::default()
        });
        let mut map = HashMap::new();
        // Cluster 0 at −1, cluster 1 at +1 (count 1 each).
        map.insert(ParamKey(0), DenseVec::from(vec![-1.0, 1.0]));
        map.insert(ParamKey(1), DenseVec::from(vec![1.0, 1.0]));
        let reader = MapReader(map, 2);
        assert_eq!(app.assign(&[-0.9], &reader), 0);
        assert_eq!(app.assign(&[0.7], &reader), 1);
    }

    #[test]
    fn kmeans_converges_on_blobs() {
        let dim = 3;
        let clusters = 3;
        let data = blobs(240, dim, clusters, 3.0, 0.4, 5);
        let app = KMeans::new(KmConfig {
            dim,
            clusters,
            init_scale: 2.0,
        });
        let mut t = SequentialTrainer::new(app, data, 5);
        t.run(2);
        let early = t.objective();
        t.run(18);
        let late = t.objective();
        assert!(late < early, "distortion falls: {early} -> {late}");
        // Blob noise 0.4 on 3 dims → distortion floor around 3·0.4²·k.
        assert!(late < 2.0, "near the noise floor, got {late}");
    }

    #[test]
    fn clusters_separate_distinct_blobs() {
        let dim = 2;
        let data = blobs(150, dim, 3, 4.0, 0.3, 9);
        let app = KMeans::new(KmConfig {
            dim,
            clusters: 3,
            init_scale: 3.0,
        });
        let mut t = SequentialTrainer::new(app, data.clone(), 9);
        t.run(25);
        // Points generated round-robin: i % 3 is the true blob. Check
        // that learned assignments respect the true partition (up to
        // label permutation): points of the same blob share a label.
        let reader = |key: ParamKey| t.read_param(key);
        let labels: Vec<u32> = data
            .iter()
            .map(|p| t.app().assign(&p.coords, &reader))
            .collect();
        for blob in 0..3usize {
            let blob_labels: Vec<u32> = labels
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 3 == blob)
                .map(|(_, l)| *l)
                .collect();
            let mode = {
                let mut counts = [0usize; 3];
                for &l in &blob_labels {
                    counts[l as usize] += 1;
                }
                *counts.iter().max().expect("nonempty")
            };
            assert!(
                mode as f64 / blob_labels.len() as f64 > 0.9,
                "blob {blob} coherence {mode}/{}",
                blob_labels.len()
            );
        }
    }

    #[test]
    fn updates_are_single_key() {
        let app = KMeans::new(KmConfig::default());
        let mut rng = seeded(1);
        let mut map = HashMap::new();
        for k in 0..app.key_count() {
            map.insert(ParamKey(k), app.init_value(ParamKey(k), &mut rng));
        }
        let reader = MapReader(map, app.value_dim(ParamKey(0)));
        let mut p = Point {
            coords: vec![0.5; 4],
        };
        let updates = app.process(&mut p, &reader, &mut rng);
        assert_eq!(updates.len(), 1, "one point updates one cluster");
        assert_eq!(updates[0].1.dim(), 5);
    }

    #[test]
    fn blobs_generator_is_deterministic() {
        assert_eq!(blobs(10, 2, 2, 1.0, 0.1, 3), blobs(10, 2, 2, 1.0, 0.1, 3));
        assert_ne!(blobs(10, 2, 2, 1.0, 0.1, 3), blobs(10, 2, 2, 1.0, 0.1, 4));
    }
}
