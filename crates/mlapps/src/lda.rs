//! Latent Dirichlet Allocation via collapsed Gibbs sampling.
//!
//! LDA discovers `K` topics in a corpus of bag-of-words documents via
//! word co-occurrence. The collapsed Gibbs sampler resamples each token's
//! topic assignment from a distribution combining the document's current
//! topic mix with the word's current topic counts.
//!
//! Shared state in the parameter server (all counts, so updates are
//! additive and commutative):
//!
//! * key `w` in `0..vocab` — the word-topic count vector `n_{w,·}` (dim `K`);
//! * key `vocab` — the global topic totals `n_·` (dim `K`).
//!
//! Per-document state (topic assignments `z` and the doc-topic histogram)
//! lives in the [`LdaDoc`] datum itself: it is scratch that a re-loaded
//! data partition rebuilds after an eviction, keeping workers stateless
//! with respect to *solution* state.

use proteus_ps::{DenseVec, ParamKey};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::app::{MlApp, ParamReader};

/// One document: its tokens and their current topic assignments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LdaDoc {
    /// Word id of each token.
    pub words: Vec<u32>,
    /// Current topic assignment per token; `None` markers are encoded as
    /// `u32::MAX` before the first sweep.
    pub assignments: Vec<u32>,
    /// Document-topic histogram `n_{d,·}` (dim `K`), kept consistent with
    /// `assignments`.
    pub doc_topics: Vec<u32>,
}

impl LdaDoc {
    /// A fresh document with unassigned tokens.
    pub fn new(words: Vec<u32>, topics: usize) -> Self {
        let n = words.len();
        LdaDoc {
            words,
            assignments: vec![u32::MAX; n],
            doc_topics: vec![0; topics],
        }
    }

    /// Whether the first Gibbs sweep has happened.
    pub fn initialized(&self) -> bool {
        self.assignments.iter().all(|&z| z != u32::MAX)
    }
}

/// Configuration for [`Lda`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Vocabulary size `V`.
    pub vocab: u32,
    /// Number of topics `K`.
    pub topics: usize,
    /// Dirichlet prior on document-topic mixtures.
    pub alpha: f64,
    /// Dirichlet prior on topic-word distributions.
    pub beta: f64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        LdaConfig {
            vocab: 100,
            topics: 5,
            alpha: 0.5,
            beta: 0.1,
        }
    }
}

/// The LDA application.
#[derive(Debug, Clone)]
pub struct Lda {
    config: LdaConfig,
}

impl Lda {
    /// Creates an LDA app with the given configuration.
    pub fn new(config: LdaConfig) -> Self {
        Lda { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LdaConfig {
        &self.config
    }

    /// Key of word `w`'s topic-count vector.
    pub fn word_key(&self, word: u32) -> ParamKey {
        ParamKey(u64::from(word))
    }

    /// Key of the global topic-totals vector.
    pub fn totals_key(&self) -> ParamKey {
        ParamKey(u64::from(self.config.vocab))
    }

    /// Samples a topic for one token given unnormalized weights.
    fn sample_topic(weights: &[f64], rng: &mut StdRng) -> usize {
        let total: f64 = weights.iter().sum();
        let mut u = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        for (k, w) in weights.iter().enumerate() {
            if u < *w {
                return k;
            }
            u -= w;
        }
        weights.len() - 1
    }
}

impl MlApp for Lda {
    type Datum = LdaDoc;

    fn key_count(&self) -> u64 {
        u64::from(self.config.vocab) + 1
    }

    fn value_dim(&self, _key: ParamKey) -> usize {
        self.config.topics
    }

    fn init_value(&self, _key: ParamKey, _rng: &mut StdRng) -> DenseVec {
        // Counts start at zero; the first sweep populates them.
        DenseVec::zeros(self.config.topics)
    }

    fn keys_for(&self, datum: &LdaDoc) -> Vec<ParamKey> {
        let mut keys: Vec<ParamKey> = datum.words.iter().map(|&w| self.word_key(w)).collect();
        keys.push(self.totals_key());
        keys.sort();
        keys.dedup();
        keys
    }

    fn process(
        &self,
        doc: &mut LdaDoc,
        params: &dyn ParamReader,
        rng: &mut StdRng,
    ) -> Vec<(ParamKey, DenseVec)> {
        let k_topics = self.config.topics;
        let alpha = self.config.alpha;
        let beta = self.config.beta;
        let v = f64::from(self.config.vocab);

        // Local mutable copies of the counts this document touches; deltas
        // are emitted at the end so the update stays additive.
        let totals = params.get(self.totals_key());
        let mut totals_now: Vec<f64> = totals.as_slice().iter().map(|&x| f64::from(x)).collect();
        let mut delta_totals = vec![0.0f32; k_topics];
        let mut word_deltas: std::collections::HashMap<u32, Vec<f32>> =
            std::collections::HashMap::new();

        // Scratch buffers reused across tokens; allocating them per token
        // dominates the sweep cost for short vocab vectors.
        let mut base = vec![0.0f64; k_topics];
        let mut weights = vec![0.0f64; k_topics];

        for t in 0..doc.words.len() {
            let w = doc.words[t];
            let wk = params.get(self.word_key(w));
            for (b, &x) in base.iter_mut().zip(wk.as_slice()) {
                *b = f64::from(x);
            }
            let wd = word_deltas.entry(w).or_insert_with(|| vec![0.0; k_topics]);

            // Remove the token's current assignment (if initialized).
            let old = doc.assignments[t];
            if old != u32::MAX {
                let k = old as usize;
                doc.doc_topics[k] -= 1;
                wd[k] -= 1.0;
                delta_totals[k] -= 1.0;
                totals_now[k] -= 1.0;
            }

            // Collapsed Gibbs conditional:
            //   p(z=k) ∝ (n_dk + α) (n_wk + β) / (n_k + Vβ)
            for (k, weight) in weights.iter_mut().enumerate() {
                let n_dk = f64::from(doc.doc_topics[k]) + alpha;
                let n_wk = (base[k] + f64::from(wd[k]) + beta).max(beta);
                let n_k = (totals_now[k] + v * beta).max(v * beta);
                *weight = n_dk * n_wk / n_k;
            }
            let k = Self::sample_topic(&weights, rng);

            doc.assignments[t] = k as u32;
            doc.doc_topics[k] += 1;
            wd[k] += 1.0;
            delta_totals[k] += 1.0;
            totals_now[k] += 1.0;
        }

        let mut updates: Vec<(ParamKey, DenseVec)> = word_deltas
            .into_iter()
            .filter(|(_, d)| d.iter().any(|&x| x != 0.0))
            .map(|(w, d)| (self.word_key(w), DenseVec::from(d)))
            .collect();
        if delta_totals.iter().any(|&x| x != 0.0) {
            updates.push((self.totals_key(), DenseVec::from(delta_totals)));
        }
        updates.sort_by_key(|(k, _)| *k);
        updates
    }

    /// Per-token negative log-likelihood of the corpus under the current
    /// count state (lower is better).
    fn objective(&self, data: &[LdaDoc], params: &dyn ParamReader) -> f64 {
        let k_topics = self.config.topics;
        let alpha = self.config.alpha;
        let beta = self.config.beta;
        let v = f64::from(self.config.vocab);
        let totals = params.get(self.totals_key());

        let mut nll = 0.0f64;
        let mut tokens = 0usize;
        for doc in data {
            let doc_len: f64 = doc.doc_topics.iter().map(|&c| f64::from(c)).sum();
            for &w in &doc.words {
                let wk = params.get(self.word_key(w));
                let mut p = 0.0f64;
                for k in 0..k_topics {
                    let theta = (f64::from(doc.doc_topics[k]) + alpha)
                        / (doc_len + alpha * k_topics as f64);
                    let phi = (f64::from(wk.as_slice()[k]) + beta)
                        / (f64::from(totals.as_slice()[k]) + v * beta);
                    p += theta * phi;
                }
                nll -= p.max(1e-300).ln();
                tokens += 1;
            }
        }
        if tokens == 0 {
            0.0
        } else {
            nll / tokens as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_ps::PsValue;
    use proteus_simtime::rng::seeded;
    use std::collections::HashMap;

    struct MapReader(HashMap<ParamKey, DenseVec>, usize);

    impl ParamReader for MapReader {
        fn get(&self, key: ParamKey) -> DenseVec {
            self.0
                .get(&key)
                .cloned()
                .unwrap_or_else(|| DenseVec::zeros(self.1))
        }
    }

    fn sweep(
        app: &Lda,
        docs: &mut [LdaDoc],
        map: &mut HashMap<ParamKey, DenseVec>,
        rng: &mut StdRng,
    ) {
        for doc in docs.iter_mut() {
            let reader = MapReader(map.clone(), app.config().topics);
            for (k, d) in app.process(doc, &reader, rng) {
                map.entry(k)
                    .or_insert_with(|| DenseVec::zeros(app.config().topics))
                    .merge(&d);
            }
        }
    }

    fn count_state(map: &HashMap<ParamKey, DenseVec>, app: &Lda) -> (Vec<f32>, f32) {
        let totals = map
            .get(&app.totals_key())
            .cloned()
            .unwrap_or_else(|| DenseVec::zeros(app.config().topics));
        let word_sum: f32 = map
            .iter()
            .filter(|(k, _)| **k != app.totals_key())
            .flat_map(|(_, v)| v.as_slice().iter().copied())
            .sum();
        (totals.as_slice().to_vec(), word_sum)
    }

    #[test]
    fn counts_stay_consistent_after_sweeps() {
        let app = Lda::new(LdaConfig {
            vocab: 20,
            topics: 3,
            ..LdaConfig::default()
        });
        let mut rng = seeded(7);
        let mut docs = vec![
            LdaDoc::new(vec![0, 1, 2, 3, 0, 1], 3),
            LdaDoc::new(vec![10, 11, 12, 10], 3),
        ];
        let mut map = HashMap::new();
        for _ in 0..5 {
            sweep(&app, &mut docs, &mut map, &mut rng);
        }
        let (totals, word_sum) = count_state(&map, &app);
        let total_tokens: usize = docs.iter().map(|d| d.words.len()).sum();
        // Topic totals sum to the token count, and equal the sum over
        // word-topic counts.
        let totals_sum: f32 = totals.iter().sum();
        assert_eq!(totals_sum as usize, total_tokens);
        assert_eq!(word_sum as usize, total_tokens);
        // Per-document histograms also match.
        for d in &docs {
            assert!(d.initialized());
            let hist_sum: u32 = d.doc_topics.iter().sum();
            assert_eq!(hist_sum as usize, d.words.len());
        }
        // No negative counts anywhere.
        assert!(totals.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn separable_corpus_splits_topics() {
        // Two disjoint vocabularies: documents use either words 0..5 or
        // words 10..15. After Gibbs sweeps, each group should concentrate
        // in different dominant topics.
        let app = Lda::new(LdaConfig {
            vocab: 20,
            topics: 2,
            alpha: 0.1,
            beta: 0.05,
        });
        let mut rng = seeded(11);
        let mut docs = Vec::new();
        for i in 0..10 {
            let words: Vec<u32> = (0..20).map(|j| (i + j) % 5).collect();
            docs.push(LdaDoc::new(words, 2));
        }
        for i in 0..10 {
            let words: Vec<u32> = (0..20).map(|j| 10 + (i + j) % 5).collect();
            docs.push(LdaDoc::new(words, 2));
        }
        let mut map = HashMap::new();
        for _ in 0..30 {
            sweep(&app, &mut docs, &mut map, &mut rng);
        }
        let dominant = |d: &LdaDoc| -> usize {
            d.doc_topics
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .map(|(k, _)| k)
                .unwrap()
        };
        let group_a = dominant(&docs[0]);
        // Group A documents agree with each other…
        let a_agree = docs[..10].iter().filter(|d| dominant(d) == group_a).count();
        // …and group B mostly uses the other topic.
        let b_other = docs[10..].iter().filter(|d| dominant(d) != group_a).count();
        assert!(a_agree >= 8, "group A coherence: {a_agree}/10");
        assert!(b_other >= 8, "group B separation: {b_other}/10");
    }

    #[test]
    fn objective_improves_with_sweeps() {
        let app = Lda::new(LdaConfig {
            vocab: 30,
            topics: 3,
            ..LdaConfig::default()
        });
        let mut rng = seeded(13);
        let mut docs: Vec<LdaDoc> = (0..12)
            .map(|i| {
                let base = (i % 3) * 10;
                LdaDoc::new((0..15).map(|j| base + j % 10).collect(), 3)
            })
            .collect();
        let mut map = HashMap::new();
        sweep(&app, &mut docs, &mut map, &mut rng);
        let early = app.objective(&docs, &MapReader(map.clone(), 3));
        for _ in 0..20 {
            sweep(&app, &mut docs, &mut map, &mut rng);
        }
        let late = app.objective(&docs, &MapReader(map, 3));
        assert!(
            late < early,
            "Gibbs sweeps should improve likelihood: {late} >= {early}"
        );
    }

    #[test]
    fn keys_for_dedups_repeated_words() {
        let app = Lda::new(LdaConfig {
            vocab: 20,
            topics: 2,
            ..LdaConfig::default()
        });
        let doc = LdaDoc::new(vec![3, 3, 3, 5], 2);
        let keys = app.keys_for(&doc);
        // Words 3 and 5 plus the totals key.
        assert_eq!(keys.len(), 3);
        assert!(keys.contains(&app.totals_key()));
    }
}
