//! The three iterative-convergent ML applications the paper evaluates,
//! plus synthetic datasets and a sequential reference trainer.
//!
//! Sec. 6.2 of the Proteus paper benchmarks:
//!
//! * **Matrix Factorization (MF)** — collaborative filtering via SGD on
//!   the Netflix rating matrix;
//! * **Multinomial Logistic Regression (MLR)** — multi-way classification
//!   via softmax SGD on ImageNet LLC features;
//! * **Latent Dirichlet Allocation (LDA)** — topic modelling via collapsed
//!   Gibbs sampling on the NYTimes corpus.
//!
//! The original datasets are not redistributable, so [`data`] synthesizes
//! corpora with the same statistical structure at laptop scale (documented
//! substitution in `DESIGN.md`). Each application implements the
//! [`MlApp`] contract consumed by AgileML's workers: stateless with
//! respect to *solution* state (which lives in the parameter server), with
//! per-datum scratch state (LDA's topic assignments) carried in the datum
//! itself so a re-loaded data partition can always be re-processed.
//!
//! [`train::SequentialTrainer`] runs any `MlApp` single-threaded against a
//! plain [`ShardStore`](proteus_ps::ShardStore) — the convergence oracle
//! the distributed runtime is validated against.

// Application code returns typed errors or totals-ordered comparisons;
// any retained expect must document a real invariant at its use site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod app;
pub mod data;
pub mod kmeans;
pub mod lda;
pub mod mf;
pub mod mlr;
pub mod train;

pub use app::MlApp;
pub use kmeans::{KMeans, KmConfig, Point};
pub use lda::{Lda, LdaConfig, LdaDoc};
pub use mf::{MatrixFactorization, MfConfig, Rating};
pub use mlr::{Example, Mlr, MlrConfig};
pub use train::SequentialTrainer;
