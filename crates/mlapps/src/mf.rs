//! Matrix factorization (collaborative filtering) via SGD.
//!
//! Given a partially observed matrix `X` (user × item ratings), factorize
//! `X ≈ L·R` with rank-`r` factors. Each worker processes its assigned
//! observed entries; for entry `(i, j, x)` it reads row `L_i` and column
//! `R_j`, computes the prediction error, and emits gradient updates with
//! L2 regularization. `L` rows occupy keys `0..rows` and `R` columns keys
//! `rows..rows+cols`.

use proteus_ps::{DenseVec, ParamKey};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::app::{MlApp, ParamReader};

/// One observed matrix entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rating {
    /// Row (user) index.
    pub row: u32,
    /// Column (item) index.
    pub col: u32,
    /// Observed value.
    pub value: f32,
}

/// Configuration for [`MatrixFactorization`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MfConfig {
    /// Number of rows (users) in `X`.
    pub rows: u32,
    /// Number of columns (items) in `X`.
    pub cols: u32,
    /// Factorization rank.
    pub rank: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// L2 regularization coefficient.
    pub reg: f32,
    /// Scale of the random factor initialization.
    pub init_scale: f32,
}

impl Default for MfConfig {
    fn default() -> Self {
        MfConfig {
            rows: 200,
            cols: 100,
            rank: 8,
            learning_rate: 0.02,
            reg: 0.01,
            init_scale: 0.1,
        }
    }
}

/// The MF application.
#[derive(Debug, Clone)]
pub struct MatrixFactorization {
    config: MfConfig,
}

impl MatrixFactorization {
    /// Creates an MF app with the given configuration.
    pub fn new(config: MfConfig) -> Self {
        MatrixFactorization { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MfConfig {
        &self.config
    }

    /// Key of row factor `L_i`.
    pub fn row_key(&self, row: u32) -> ParamKey {
        ParamKey(u64::from(row))
    }

    /// Key of column factor `R_j`.
    pub fn col_key(&self, col: u32) -> ParamKey {
        ParamKey(u64::from(self.config.rows) + u64::from(col))
    }

    /// The prediction for one entry under the given parameters.
    pub fn predict(&self, row: u32, col: u32, params: &dyn ParamReader) -> f32 {
        params
            .get(self.row_key(row))
            .dot(&params.get(self.col_key(col)))
    }
}

impl MlApp for MatrixFactorization {
    type Datum = Rating;

    fn key_count(&self) -> u64 {
        u64::from(self.config.rows) + u64::from(self.config.cols)
    }

    fn value_dim(&self, _key: ParamKey) -> usize {
        self.config.rank
    }

    fn init_value(&self, _key: ParamKey, rng: &mut StdRng) -> DenseVec {
        let s = self.config.init_scale;
        DenseVec::from(
            (0..self.config.rank)
                .map(|_| rng.gen_range(-s..s))
                .collect::<Vec<f32>>(),
        )
    }

    fn keys_for(&self, datum: &Rating) -> Vec<ParamKey> {
        vec![self.row_key(datum.row), self.col_key(datum.col)]
    }

    fn process(
        &self,
        datum: &mut Rating,
        params: &dyn ParamReader,
        _rng: &mut StdRng,
    ) -> Vec<(ParamKey, DenseVec)> {
        let li = params.get(self.row_key(datum.row));
        let rj = params.get(self.col_key(datum.col));
        let err = li.dot(&rj) - datum.value;
        let lr = self.config.learning_rate;
        let reg = self.config.reg;

        // dL_i = -lr (err · R_j + reg · L_i), fused into one pass.
        let dl = DenseVec::lincomb(-lr * err, &rj, -lr * reg, &li);
        // dR_j = -lr (err · L_i + reg · R_j)
        let dr = DenseVec::lincomb(-lr * err, &li, -lr * reg, &rj);

        vec![(self.row_key(datum.row), dl), (self.col_key(datum.col), dr)]
    }

    fn objective(&self, data: &[Rating], params: &dyn ParamReader) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let sse: f64 = data
            .iter()
            .map(|r| {
                let e = f64::from(self.predict(r.row, r.col, params) - r.value);
                e * e
            })
            .sum();
        sse / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_simtime::rng::seeded;
    use std::collections::HashMap;

    struct MapReader {
        map: HashMap<ParamKey, DenseVec>,
        dim: usize,
    }

    impl ParamReader for MapReader {
        fn get(&self, key: ParamKey) -> DenseVec {
            self.map
                .get(&key)
                .cloned()
                .unwrap_or_else(|| DenseVec::zeros(self.dim))
        }
    }

    #[test]
    fn keys_split_rows_then_cols() {
        let app = MatrixFactorization::new(MfConfig {
            rows: 10,
            cols: 5,
            ..MfConfig::default()
        });
        assert_eq!(app.row_key(3), ParamKey(3));
        assert_eq!(app.col_key(2), ParamKey(12));
        assert_eq!(app.key_count(), 15);
        let keys = app.keys_for(&Rating {
            row: 1,
            col: 4,
            value: 0.0,
        });
        assert_eq!(keys, vec![ParamKey(1), ParamKey(14)]);
    }

    #[test]
    fn gradient_reduces_error_for_single_entry() {
        let app = MatrixFactorization::new(MfConfig {
            rows: 1,
            cols: 1,
            rank: 2,
            learning_rate: 0.1,
            reg: 0.0,
            init_scale: 0.5,
        });
        let mut rng = seeded(1);
        let mut map = HashMap::new();
        map.insert(ParamKey(0), app.init_value(ParamKey(0), &mut rng));
        map.insert(ParamKey(1), app.init_value(ParamKey(1), &mut rng));
        let mut datum = Rating {
            row: 0,
            col: 0,
            value: 1.0,
        };

        let mut last = f64::INFINITY;
        for _ in 0..200 {
            let reader = MapReader {
                map: map.clone(),
                dim: 2,
            };
            let updates = app.process(&mut datum, &reader, &mut rng);
            for (k, d) in updates {
                use proteus_ps::PsValue;
                map.get_mut(&k).unwrap().merge(&d);
            }
            let reader = MapReader {
                map: map.clone(),
                dim: 2,
            };
            let obj = app.objective(&[datum], &reader);
            assert!(
                obj <= last + 1e-6,
                "objective must not increase: {obj} > {last}"
            );
            last = obj;
        }
        assert!(last < 1e-3, "single entry should fit well, got {last}");
    }

    #[test]
    fn init_values_respect_scale_and_rank() {
        let app = MatrixFactorization::new(MfConfig::default());
        let mut rng = seeded(2);
        let v = app.init_value(ParamKey(0), &mut rng);
        assert_eq!(v.dim(), app.config().rank);
        assert!(v
            .as_slice()
            .iter()
            .all(|x| x.abs() <= app.config().init_scale));
    }

    #[test]
    fn objective_of_empty_dataset_is_zero() {
        let app = MatrixFactorization::new(MfConfig::default());
        let reader = MapReader {
            map: HashMap::new(),
            dim: 8,
        };
        assert_eq!(app.objective(&[], &reader), 0.0);
    }
}
