//! Multinomial logistic regression via softmax SGD.
//!
//! Models the probability that a `d`-dimensional observation belongs to
//! each of `K` classes with a softmax over per-class weight vectors
//! (the paper trains this as the last layer of image/text classifiers).
//! The weight vectors are the model parameters: key `k` holds `w_k`, and
//! every gradient step updates the **full model** — all `K` vectors — as
//! in the paper's MLR setup, which is what makes MLR network-heavy.

use proteus_ps::{kernels, DenseVec, ParamKey};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::app::{MlApp, ParamReader};

/// One labelled observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Example {
    /// Dense feature vector of dimension `MlrConfig::dim`.
    pub features: Vec<f32>,
    /// True class in `0..MlrConfig::classes`.
    pub label: u32,
}

/// Configuration for [`Mlr`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlrConfig {
    /// Feature dimension `d`.
    pub dim: usize,
    /// Number of classes `K`.
    pub classes: u32,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// L2 regularization coefficient.
    pub reg: f32,
}

impl Default for MlrConfig {
    fn default() -> Self {
        MlrConfig {
            dim: 16,
            classes: 4,
            learning_rate: 0.05,
            reg: 1e-4,
        }
    }
}

/// The MLR application.
#[derive(Debug, Clone)]
pub struct Mlr {
    config: MlrConfig,
}

impl Mlr {
    /// Creates an MLR app with the given configuration.
    pub fn new(config: MlrConfig) -> Self {
        Mlr { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MlrConfig {
        &self.config
    }

    /// Class probabilities for one example under the given parameters.
    pub fn softmax(&self, features: &[f32], params: &dyn ParamReader) -> Vec<f64> {
        let logits: Vec<f64> = (0..self.config.classes)
            .map(|k| {
                let w = params.get(ParamKey(u64::from(k)));
                f64::from(kernels::dot(w.as_slice(), features))
            })
            .collect();
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// The predicted class (argmax probability).
    pub fn predict(&self, features: &[f32], params: &dyn ParamReader) -> u32 {
        let probs = self.softmax(features, params);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k as u32)
            .unwrap_or(0)
    }
}

impl MlApp for Mlr {
    type Datum = Example;

    fn key_count(&self) -> u64 {
        u64::from(self.config.classes)
    }

    fn value_dim(&self, _key: ParamKey) -> usize {
        self.config.dim
    }

    fn init_value(&self, _key: ParamKey, rng: &mut StdRng) -> DenseVec {
        DenseVec::from(
            (0..self.config.dim)
                .map(|_| rng.gen_range(-0.01..0.01))
                .collect::<Vec<f32>>(),
        )
    }

    fn keys_for(&self, _datum: &Example) -> Vec<ParamKey> {
        (0..u64::from(self.config.classes)).map(ParamKey).collect()
    }

    fn process(
        &self,
        datum: &mut Example,
        params: &dyn ParamReader,
        _rng: &mut StdRng,
    ) -> Vec<(ParamKey, DenseVec)> {
        let probs = self.softmax(&datum.features, params);
        let x = DenseVec::from(datum.features.clone());
        let lr = self.config.learning_rate;
        let reg = self.config.reg;
        (0..self.config.classes)
            .map(|k| {
                let key = ParamKey(u64::from(k));
                let indicator = if k == datum.label { 1.0 } else { 0.0 };
                // Gradient of cross-entropy: (p_k − 1{k=y}) x + reg·w_k,
                // scaled by −lr — fused into one pass over the operands.
                let coeff = (probs[k as usize] as f32) - indicator;
                let d = DenseVec::lincomb(-lr * coeff, &x, -lr * reg, &params.get(key));
                (key, d)
            })
            .collect()
    }

    fn objective(&self, data: &[Example], params: &dyn ParamReader) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let nll: f64 = data
            .iter()
            .map(|e| {
                let probs = self.softmax(&e.features, params);
                -(probs[e.label as usize].max(1e-12)).ln()
            })
            .sum();
        nll / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_ps::PsValue;
    use proteus_simtime::rng::seeded;
    use std::collections::HashMap;

    struct MapReader(HashMap<ParamKey, DenseVec>, usize);

    impl ParamReader for MapReader {
        fn get(&self, key: ParamKey) -> DenseVec {
            self.0
                .get(&key)
                .cloned()
                .unwrap_or_else(|| DenseVec::zeros(self.1))
        }
    }

    fn two_blob_data() -> Vec<Example> {
        // Two linearly separable blobs in 2-D.
        vec![
            Example {
                features: vec![1.0, 0.1],
                label: 0,
            },
            Example {
                features: vec![0.9, -0.1],
                label: 0,
            },
            Example {
                features: vec![1.1, 0.0],
                label: 0,
            },
            Example {
                features: vec![-1.0, 0.1],
                label: 1,
            },
            Example {
                features: vec![-0.9, -0.2],
                label: 1,
            },
            Example {
                features: vec![-1.1, 0.05],
                label: 1,
            },
        ]
    }

    #[test]
    fn softmax_sums_to_one() {
        let app = Mlr::new(MlrConfig {
            dim: 2,
            classes: 3,
            ..MlrConfig::default()
        });
        let reader = MapReader(HashMap::new(), 2);
        let p = app.softmax(&[0.3, -0.7], &reader);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sgd_separates_two_blobs() {
        let app = Mlr::new(MlrConfig {
            dim: 2,
            classes: 2,
            learning_rate: 0.5,
            reg: 0.0,
        });
        let mut rng = seeded(3);
        let mut map = HashMap::new();
        for k in 0..2u64 {
            map.insert(ParamKey(k), app.init_value(ParamKey(k), &mut rng));
        }
        let mut data = two_blob_data();
        for _ in 0..50 {
            for datum in &mut data {
                let reader = MapReader(map.clone(), 2);
                for (k, d) in app.process(datum, &reader, &mut rng) {
                    map.get_mut(&k).unwrap().merge(&d);
                }
            }
        }
        let reader = MapReader(map.clone(), 2);
        for e in &data {
            assert_eq!(app.predict(&e.features, &reader), e.label);
        }
        assert!(app.objective(&data, &reader) < 0.2);
    }

    #[test]
    fn every_datum_touches_full_model() {
        let app = Mlr::new(MlrConfig {
            dim: 4,
            classes: 7,
            ..MlrConfig::default()
        });
        let e = Example {
            features: vec![0.0; 4],
            label: 3,
        };
        assert_eq!(app.keys_for(&e).len(), 7);
        assert_eq!(app.key_count(), 7);
    }

    #[test]
    fn objective_decreases_under_training() {
        let app = Mlr::new(MlrConfig {
            dim: 2,
            classes: 2,
            learning_rate: 0.3,
            reg: 0.0,
        });
        let mut rng = seeded(4);
        let mut map = HashMap::new();
        for k in 0..2u64 {
            map.insert(ParamKey(k), app.init_value(ParamKey(k), &mut rng));
        }
        let mut data = two_blob_data();
        let before = app.objective(&data, &MapReader(map.clone(), 2));
        for _ in 0..20 {
            for datum in &mut data {
                let reader = MapReader(map.clone(), 2);
                for (k, d) in app.process(datum, &reader, &mut rng) {
                    map.get_mut(&k).unwrap().merge(&d);
                }
            }
        }
        let after = app.objective(&data, &MapReader(map, 2));
        assert!(
            after < before,
            "training should reduce loss: {after} >= {before}"
        );
    }
}
