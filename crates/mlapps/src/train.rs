//! A sequential reference trainer.
//!
//! Runs any [`MlApp`] single-threaded against a plain
//! [`ShardStore`], with no networking, caching, elasticity, or staleness.
//! This is the convergence oracle: the distributed AgileML runtime is
//! validated by showing it reaches comparable objective values on the
//! same data and seeds.

use proteus_ps::{DenseVec, ParamKey, PartitionMap, ShardStore};
use proteus_simtime::rng::seeded_stream;
use rand::rngs::StdRng;

use crate::app::{MlApp, ParamReader};

/// Single-threaded trainer over an in-memory shard.
pub struct SequentialTrainer<A: MlApp> {
    app: A,
    store: ShardStore<DenseVec>,
    data: Vec<A::Datum>,
    rng: StdRng,
    iterations_done: u64,
}

/// Reader over a `ShardStore` that falls back to a zero of the right
/// dimension for unmaterialized keys.
struct StoreReader<'a, A: MlApp> {
    app: &'a A,
    store: &'a ShardStore<DenseVec>,
}

impl<'a, A: MlApp> ParamReader for StoreReader<'a, A> {
    fn get(&self, key: ParamKey) -> DenseVec {
        self.store
            .read(key)
            .cloned()
            .unwrap_or_else(|| DenseVec::zeros(self.app.value_dim(key)))
    }
}

impl<A: MlApp> SequentialTrainer<A> {
    /// Creates a trainer, initializing every parameter with the app's
    /// initializer under a seed-derived RNG.
    pub fn new(app: A, data: Vec<A::Datum>, seed: u64) -> Self {
        // One partition is always a valid layout (only zero is rejected).
        #[allow(clippy::expect_used)]
        let layout = PartitionMap::new(1).expect("one partition is valid");
        let mut store = ShardStore::new(layout);
        let mut init_rng = seeded_stream(seed, 1);
        for k in 0..app.key_count() {
            let key = ParamKey(k);
            let v = app.init_value(key, &mut init_rng);
            store.install(key, v);
        }
        SequentialTrainer {
            app,
            store,
            data,
            rng: seeded_stream(seed, 2),
            iterations_done: 0,
        }
    }

    /// Runs one full pass over the data.
    pub fn run_iteration(&mut self) {
        let mut data = std::mem::take(&mut self.data);
        for datum in &mut data {
            let updates = {
                let reader = StoreReader {
                    app: &self.app,
                    store: &self.store,
                };
                self.app.process(datum, &reader, &mut self.rng)
            };
            for (k, d) in updates {
                self.store.apply_update(k, &d);
            }
        }
        self.data = data;
        self.iterations_done += 1;
    }

    /// Runs `n` passes over the data.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.run_iteration();
        }
    }

    /// Completed iteration count.
    pub fn iterations_done(&self) -> u64 {
        self.iterations_done
    }

    /// The current objective value over the training data.
    pub fn objective(&self) -> f64 {
        let reader = StoreReader {
            app: &self.app,
            store: &self.store,
        };
        self.app.objective(&self.data, &reader)
    }

    /// Reads one parameter (diagnostics/tests).
    pub fn read_param(&self, key: ParamKey) -> DenseVec {
        StoreReader {
            app: &self.app,
            store: &self.store,
        }
        .get(key)
    }

    /// The application being trained.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// The training data.
    pub fn data(&self) -> &[A::Datum] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{
        imagenet_like, netflix_like, nytimes_like, LdaDataConfig, MfDataConfig, MlrDataConfig,
    };
    use crate::lda::{Lda, LdaConfig};
    use crate::mf::{MatrixFactorization, MfConfig};
    use crate::mlr::{Mlr, MlrConfig};

    #[test]
    fn mf_converges_on_netflix_like_data() {
        let data_cfg = MfDataConfig {
            rows: 60,
            cols: 40,
            true_rank: 3,
            observed: 1500,
            noise: 0.02,
        };
        let data = netflix_like(&data_cfg, 42);
        let app = MatrixFactorization::new(MfConfig {
            rows: 60,
            cols: 40,
            rank: 6,
            learning_rate: 0.05,
            reg: 1e-4,
            init_scale: 0.2,
        });
        let mut t = SequentialTrainer::new(app, data, 42);
        let before = t.objective();
        t.run(30);
        let after = t.objective();
        assert!(after < before * 0.2, "MF should fit: {before} -> {after}");
        assert!(after < 0.05, "residual close to noise floor, got {after}");
        assert_eq!(t.iterations_done(), 30);
    }

    #[test]
    fn mlr_converges_on_imagenet_like_data() {
        let data_cfg = MlrDataConfig {
            examples: 300,
            dim: 8,
            classes: 3,
            separation: 2.0,
            noise: 0.4,
        };
        let data = imagenet_like(&data_cfg, 7);
        let app = Mlr::new(MlrConfig {
            dim: 8,
            classes: 3,
            learning_rate: 0.1,
            reg: 1e-4,
        });
        let mut t = SequentialTrainer::new(app, data.clone(), 7);
        let before = t.objective();
        t.run(15);
        let after = t.objective();
        assert!(
            after < before * 0.5,
            "MLR should learn: {before} -> {after}"
        );
        // Accuracy check on the training set.
        let correct = data
            .iter()
            .filter(|e| {
                let reader = |key: ParamKey| t.read_param(key);
                t.app().predict(&e.features, &reader) == e.label
            })
            .count();
        assert!(
            correct as f64 / data.len() as f64 > 0.9,
            "accuracy {correct}/{}",
            data.len()
        );
    }

    #[test]
    fn lda_converges_on_nytimes_like_data() {
        let data_cfg = LdaDataConfig {
            docs: 30,
            vocab: 60,
            true_topics: 3,
            doc_len: 30,
            topic_purity: 0.9,
        };
        let data = nytimes_like(&data_cfg, 9, 3);
        let app = Lda::new(LdaConfig {
            vocab: 60,
            topics: 3,
            alpha: 0.3,
            beta: 0.05,
        });
        let mut t = SequentialTrainer::new(app, data, 9);
        t.run(1);
        let early = t.objective();
        t.run(25);
        let late = t.objective();
        assert!(late < early, "LDA should improve: {early} -> {late}");
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let data = netflix_like(&MfDataConfig::default(), 5);
        let app = || MatrixFactorization::new(MfConfig::default());
        let mut a = SequentialTrainer::new(app(), data.clone(), 5);
        let mut b = SequentialTrainer::new(app(), data, 5);
        a.run(3);
        b.run(3);
        assert_eq!(a.objective(), b.objective());
        assert_eq!(
            a.read_param(ParamKey(0)).as_slice(),
            b.read_param(ParamKey(0)).as_slice()
        );
    }
}
