//! The typed event taxonomy, one enum per subsystem.
//!
//! Payloads are primitives (`u64`, `f64`, `String`) so the JSONL schema
//! is stable and the crate stays a leaf: market keys arrive already
//! rendered through `Display`, allocation ids as raw `u64`. Each event
//! maps to a dotted `kind` string (`"market.spot_granted"`,
//! `"bid.candidate"`, …) used both by timeline queries and the exporter.

use crate::jsonl::{push_f64, push_str, push_u64};

/// A single recorded happening, tagged by originating subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Cloud-provider plane: grants, refusals, evictions, billing.
    Market(MarketEvent),
    /// BidBrain plane: ranked Eq. 4 candidate evaluations.
    Bid(BidEvent),
    /// Training plane: stage transitions, clock progress, recovery.
    Agile(AgileEvent),
    /// Session plane: watchdog degrade/restore, fallback launches.
    Session(SessionEvent),
    /// Cost-study plane: per-scheme cumulative cost/work samples.
    Cost(CostEvent),
    /// Fleet plane: multi-job admission, gang scheduling, preemption.
    Fleet(FleetEvent),
}

/// Provider-side market happenings.
#[derive(Debug, Clone, PartialEq)]
pub enum MarketEvent {
    /// The observed spot price of `market` changed.
    PriceMove {
        /// Market key, rendered via `Display`. Shared, not owned: this
        /// is by far the hottest event (one per price change per job),
        /// so emitters intern the name once and clone the `Arc`.
        market: std::sync::Arc<str>,
        /// New hourly spot price.
        price: f64,
    },
    /// A spot request was granted in full.
    SpotGranted {
        /// Market key, interned (see `MarketKey::interned_name`).
        market: std::sync::Arc<str>,
        /// Allocation id.
        allocation: u64,
        /// Instances granted.
        count: u64,
        /// Standing bid for the allocation.
        bid: f64,
    },
    /// A spot request was granted below the requested count.
    PartialGrant {
        /// Market key, interned (see `MarketKey::interned_name`).
        market: std::sync::Arc<str>,
        /// Instances requested.
        requested: u64,
        /// Instances actually granted.
        granted: u64,
    },
    /// A spot request was refused outright for lack of capacity.
    CapacityRefused {
        /// Market key, interned (see `MarketKey::interned_name`).
        market: std::sync::Arc<str>,
        /// Instances requested.
        requested: u64,
    },
    /// The provider API throttled a request.
    Throttled {
        /// Market key, interned (see `MarketKey::interned_name`).
        market: std::sync::Arc<str>,
        /// Advertised retry delay, in sim millis.
        retry_after_ms: u64,
    },
    /// A bid at or below the current market price was rejected.
    BidRejected {
        /// Market key, interned (see `MarketKey::interned_name`).
        market: std::sync::Arc<str>,
        /// Offered bid.
        bid: f64,
        /// Current market price.
        price: f64,
    },
    /// An on-demand allocation was granted.
    OnDemandGranted {
        /// Allocation id.
        allocation: u64,
        /// Instances granted.
        count: u64,
        /// Fixed hourly price.
        price: f64,
    },
    /// The market price crossed an allocation's bid; eviction is
    /// scheduled after the warning lead.
    EvictionWarning {
        /// Allocation id.
        allocation: u64,
        /// Scheduled eviction time, in sim millis.
        evict_at_ms: u64,
    },
    /// An allocation was reclaimed by the provider.
    Evicted {
        /// Allocation id.
        allocation: u64,
    },
    /// A booting allocation came up and was handed to the tenant.
    Launched {
        /// Allocation id.
        allocation: u64,
    },
    /// A booting allocation died before coming up.
    LaunchFailed {
        /// Allocation id.
        allocation: u64,
    },
    /// A billing line item: one hour (or final partial hour) charged.
    HourCharged {
        /// Allocation id.
        allocation: u64,
        /// Amount charged.
        amount: f64,
    },
    /// The tenant terminated an allocation.
    Terminated {
        /// Allocation id.
        allocation: u64,
    },
}

/// BidBrain decision events — the Eq. 4 trail behind each bid.
#[derive(Debug, Clone, PartialEq)]
pub enum BidEvent {
    /// One acquisition sweep finished.
    Evaluated {
        /// Markets considered.
        markets: u64,
        /// Candidates that beat the hysteresis gate.
        candidates: u64,
        /// Objective score of the current footprint.
        current_score: f64,
    },
    /// The preemption forecaster predicted an imminent eviction for a
    /// held (market, bid) pair, ahead of any provider warning.
    ForecastAlert {
        /// Market key, interned (see `MarketKey::interned_name`).
        market: std::sync::Arc<str>,
        /// The bid the holding is exposed at.
        bid: f64,
        /// Calibrated hazard estimate in `[0, 1]` at fire time.
        hazard: f64,
        /// Expected time until the eviction lands, in sim millis.
        horizon_ms: u64,
    },
    /// A ranked candidate that survived the improvement gate, with the
    /// Eq. 4 terms that produced its score.
    CandidateRanked {
        /// Rank in the sweep (0 = best).
        rank: u64,
        /// Market key, interned (see `MarketKey::interned_name`).
        market: std::sync::Arc<str>,
        /// Instances the request asks for.
        count: u64,
        /// Bid price.
        bid: f64,
        /// Delta above the current price that produced the bid.
        delta: f64,
        /// Objective score of the footprint with this candidate added.
        score: f64,
        /// Eq. 4 numerator: expected cost of the augmented footprint.
        expected_cost: f64,
        /// Eq. 4 denominator: expected work of the augmented footprint.
        expected_work: f64,
    },
}

/// Training-plane events, mirrored from the AgileML job's event channel.
#[derive(Debug, Clone, PartialEq)]
pub enum AgileEvent {
    /// All initially expected nodes are ready and iteration began.
    Started {
        /// Nodes participating at start.
        nodes: u64,
    },
    /// The global minimum clock advanced.
    ClockAdvanced {
        /// The new minimum clock.
        min: u64,
    },
    /// The controller switched elasticity stages.
    StageChanged {
        /// Previous stage, rendered via `Debug`.
        from: String,
        /// New stage.
        to: String,
    },
    /// Nodes were integrated into the computation.
    NodesAdded {
        /// How many.
        count: u64,
    },
    /// Nodes were drained and removed after an eviction warning.
    NodesEvicted {
        /// How many.
        count: u64,
    },
    /// Nodes were proactively demoted on a forecast alert: their served
    /// partitions migrated away while the nodes keep working.
    NodesPreDrained {
        /// How many nodes were demoted.
        count: u64,
        /// How many ActivePS partitions moved.
        partitions: u64,
    },
    /// Part of the reliable tier was lost and repaired in-job by
    /// re-replicating its backup partitions onto surviving reliable
    /// nodes (no restart from checkpoint).
    ReliableRepaired {
        /// How many reliable nodes were lost.
        count: u64,
        /// Backup partitions re-replicated onto survivors.
        partitions: u64,
    },
    /// Nodes failed and rollback recovery ran.
    NodesFailedRecovered {
        /// How many failed.
        count: u64,
        /// The consistent clock the job rolled back to.
        rolled_back_to: u64,
    },
    /// The controller hit an unrecoverable condition.
    Faulted {
        /// The fault, rendered via `Display`.
        fault: String,
    },
    /// A protocol trace line (`AGILE_DEBUG=1`), routed through the
    /// event channel instead of stderr.
    Trace {
        /// The trace message.
        msg: String,
    },
}

/// Session state-machine events.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// The session launched its reliable tier and training job.
    Launched {
        /// Reliable-tier machines.
        reliable: u64,
    },
    /// The watchdog entered degraded mode (market starvation).
    Degraded,
    /// The session left degraded mode.
    Restored {
        /// Time spent degraded this episode, in sim millis.
        degraded_ms: u64,
    },
    /// Degraded mode provisioned an on-demand fallback machine.
    FallbackLaunched {
        /// Allocation id of the fallback.
        allocation: u64,
    },
    /// A forecast alert triggered a proactive pre-drain of an
    /// allocation's nodes.
    PreDrained {
        /// Allocation id.
        allocation: u64,
    },
    /// A forecast alert expired with no eviction following — the
    /// pre-drain (if any) was a false-positive migration.
    ForecastFalseAlert {
        /// Allocation id.
        allocation: u64,
    },
    /// An adaptive checkpoint was taken at the hazard-chosen interval.
    CheckpointTaken {
        /// The interval that scheduled this checkpoint, in sim millis.
        interval_ms: u64,
        /// Encoded snapshot size, in bytes.
        bytes: u64,
        /// The consistent clock the snapshot captures.
        clock: u64,
    },
    /// The session restarted its job from the last durable checkpoint
    /// after an unrepairable reliable-tier loss.
    CheckpointRestored {
        /// The clock the restored snapshot resumes from.
        clock: u64,
        /// Training clocks lost since the restored snapshot.
        work_lost: u64,
    },
    /// The session finished and produced its report.
    Finished {
        /// Total account cost.
        cost: f64,
        /// Training clocks reached.
        clocks: u64,
    },
}

/// Cost-study events — the Fig. 9/10 axes.
#[derive(Debug, Clone, PartialEq)]
pub enum CostEvent {
    /// Delimits the start of one simulated job within a study export.
    RunStart {
        /// Scheme label (e.g. `"Proteus"`).
        scheme: String,
        /// Task index within the study, in result order.
        index: u64,
        /// Job start time, in sim millis.
        start_ms: u64,
    },
    /// A periodic sample of the job's cumulative cost/work and its
    /// footprint by tier.
    Sample {
        /// Cumulative cost so far (credits netted out).
        cum_cost: f64,
        /// Cumulative work so far.
        cum_work: f64,
        /// Spot (transient-tier) instances currently held.
        spot: u64,
        /// Reliable-tier on-demand instances currently held.
        on_demand: u64,
        /// Degraded-mode fallback on-demand instances currently held.
        fallback: u64,
    },
    /// Final accounting for one simulated job.
    RunEnd {
        /// Final cost.
        cost: f64,
        /// Final work.
        work: f64,
        /// Evictions absorbed.
        evictions: u64,
        /// Fallback launches.
        fallback_count: u64,
    },
}

/// Fleet-scheduler events — the multi-tenant control plane.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetEvent {
    /// A submitted job passed admission control and entered the pending
    /// queue.
    JobAdmitted {
        /// Fleet-assigned job id.
        job: u64,
        /// Priority tier (0 = highest).
        tier: u64,
    },
    /// A job's gang could not acquire this round and (re)joined the
    /// queue.
    GangQueued {
        /// Fleet-assigned job id.
        job: u64,
        /// Gang size (minimum worker set).
        count: u64,
    },
    /// A job's gang acquired atomically and the job started (or
    /// resumed) running.
    GangLaunched {
        /// Fleet-assigned job id.
        job: u64,
        /// Market key, interned (see `MarketKey::interned_name`).
        market: std::sync::Arc<str>,
        /// Instances in the gang.
        count: u64,
        /// Standing bid per instance-hour.
        bid: f64,
        /// Time spent queued before this launch, in sim millis.
        waited_ms: u64,
    },
    /// The sweep driver killed a lagging or out-competed trial early.
    TrialEarlyKilled {
        /// Fleet-assigned job id.
        job: u64,
        /// Work the trial had accrued when killed, in core-hours.
        work_done: f64,
    },
    /// A running low-value trial was preempted to make room for a
    /// higher-value gang; its bill settled like an eviction.
    PreemptedByPriority {
        /// The preempted job.
        job: u64,
        /// The higher-value job whose gang took the capacity.
        by: u64,
    },
}

impl Event {
    /// The dotted kind string identifying this event in queries and in
    /// the JSONL export.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Market(e) => match e {
                MarketEvent::PriceMove { .. } => "market.price_move",
                MarketEvent::SpotGranted { .. } => "market.spot_granted",
                MarketEvent::PartialGrant { .. } => "market.partial_grant",
                MarketEvent::CapacityRefused { .. } => "market.capacity_refused",
                MarketEvent::Throttled { .. } => "market.throttled",
                MarketEvent::BidRejected { .. } => "market.bid_rejected",
                MarketEvent::OnDemandGranted { .. } => "market.on_demand_granted",
                MarketEvent::EvictionWarning { .. } => "market.eviction_warning",
                MarketEvent::Evicted { .. } => "market.evicted",
                MarketEvent::Launched { .. } => "market.launched",
                MarketEvent::LaunchFailed { .. } => "market.launch_failed",
                MarketEvent::HourCharged { .. } => "market.hour_charged",
                MarketEvent::Terminated { .. } => "market.terminated",
            },
            Event::Bid(e) => match e {
                BidEvent::Evaluated { .. } => "bid.evaluated",
                BidEvent::ForecastAlert { .. } => "bid.forecast_alert",
                BidEvent::CandidateRanked { .. } => "bid.candidate",
            },
            Event::Agile(e) => match e {
                AgileEvent::Started { .. } => "agile.started",
                AgileEvent::ClockAdvanced { .. } => "agile.clock_advanced",
                AgileEvent::StageChanged { .. } => "agile.stage_changed",
                AgileEvent::NodesAdded { .. } => "agile.nodes_added",
                AgileEvent::NodesEvicted { .. } => "agile.nodes_evicted",
                AgileEvent::NodesPreDrained { .. } => "agile.pre_drained",
                AgileEvent::ReliableRepaired { .. } => "agile.reliable_repaired",
                AgileEvent::NodesFailedRecovered { .. } => "agile.recovered",
                AgileEvent::Faulted { .. } => "agile.faulted",
                AgileEvent::Trace { .. } => "agile.trace",
            },
            Event::Session(e) => match e {
                SessionEvent::Launched { .. } => "session.launched",
                SessionEvent::Degraded => "session.degraded",
                SessionEvent::Restored { .. } => "session.restored",
                SessionEvent::FallbackLaunched { .. } => "session.fallback_launched",
                SessionEvent::PreDrained { .. } => "session.pre_drain",
                SessionEvent::ForecastFalseAlert { .. } => "session.false_alert",
                SessionEvent::CheckpointTaken { .. } => "session.checkpoint",
                SessionEvent::CheckpointRestored { .. } => "session.checkpoint_restored",
                SessionEvent::Finished { .. } => "session.finished",
            },
            Event::Cost(e) => match e {
                CostEvent::RunStart { .. } => "costsim.run_start",
                CostEvent::Sample { .. } => "costsim.sample",
                CostEvent::RunEnd { .. } => "costsim.run_end",
            },
            Event::Fleet(e) => match e {
                FleetEvent::JobAdmitted { .. } => "fleet.job_admitted",
                FleetEvent::GangQueued { .. } => "fleet.gang_queued",
                FleetEvent::GangLaunched { .. } => "fleet.gang_launched",
                FleetEvent::TrialEarlyKilled { .. } => "fleet.trial_early_killed",
                FleetEvent::PreemptedByPriority { .. } => "fleet.preempted_by_priority",
            },
        }
    }

    /// Appends this event's payload as `,"field":value` JSON pairs.
    pub(crate) fn write_fields(&self, out: &mut String) {
        match self {
            Event::Market(e) => match e {
                MarketEvent::PriceMove { market, price } => {
                    push_str(out, "market", market);
                    push_f64(out, "price", *price);
                }
                MarketEvent::SpotGranted {
                    market,
                    allocation,
                    count,
                    bid,
                } => {
                    push_str(out, "market", market);
                    push_u64(out, "allocation", *allocation);
                    push_u64(out, "count", *count);
                    push_f64(out, "bid", *bid);
                }
                MarketEvent::PartialGrant {
                    market,
                    requested,
                    granted,
                } => {
                    push_str(out, "market", market);
                    push_u64(out, "requested", *requested);
                    push_u64(out, "granted", *granted);
                }
                MarketEvent::CapacityRefused { market, requested } => {
                    push_str(out, "market", market);
                    push_u64(out, "requested", *requested);
                }
                MarketEvent::Throttled {
                    market,
                    retry_after_ms,
                } => {
                    push_str(out, "market", market);
                    push_u64(out, "retry_after_ms", *retry_after_ms);
                }
                MarketEvent::BidRejected { market, bid, price } => {
                    push_str(out, "market", market);
                    push_f64(out, "bid", *bid);
                    push_f64(out, "price", *price);
                }
                MarketEvent::OnDemandGranted {
                    allocation,
                    count,
                    price,
                } => {
                    push_u64(out, "allocation", *allocation);
                    push_u64(out, "count", *count);
                    push_f64(out, "price", *price);
                }
                MarketEvent::EvictionWarning {
                    allocation,
                    evict_at_ms,
                } => {
                    push_u64(out, "allocation", *allocation);
                    push_u64(out, "evict_at_ms", *evict_at_ms);
                }
                MarketEvent::Evicted { allocation }
                | MarketEvent::Launched { allocation }
                | MarketEvent::LaunchFailed { allocation }
                | MarketEvent::Terminated { allocation } => {
                    push_u64(out, "allocation", *allocation);
                }
                MarketEvent::HourCharged { allocation, amount } => {
                    push_u64(out, "allocation", *allocation);
                    push_f64(out, "amount", *amount);
                }
            },
            Event::Bid(e) => match e {
                BidEvent::Evaluated {
                    markets,
                    candidates,
                    current_score,
                } => {
                    push_u64(out, "markets", *markets);
                    push_u64(out, "candidates", *candidates);
                    push_f64(out, "current_score", *current_score);
                }
                BidEvent::ForecastAlert {
                    market,
                    bid,
                    hazard,
                    horizon_ms,
                } => {
                    push_str(out, "market", market);
                    push_f64(out, "bid", *bid);
                    push_f64(out, "hazard", *hazard);
                    push_u64(out, "horizon_ms", *horizon_ms);
                }
                BidEvent::CandidateRanked {
                    rank,
                    market,
                    count,
                    bid,
                    delta,
                    score,
                    expected_cost,
                    expected_work,
                } => {
                    push_u64(out, "rank", *rank);
                    push_str(out, "market", market);
                    push_u64(out, "count", *count);
                    push_f64(out, "bid", *bid);
                    push_f64(out, "delta", *delta);
                    push_f64(out, "score", *score);
                    push_f64(out, "expected_cost", *expected_cost);
                    push_f64(out, "expected_work", *expected_work);
                }
            },
            Event::Agile(e) => match e {
                AgileEvent::Started { nodes } => push_u64(out, "nodes", *nodes),
                AgileEvent::ClockAdvanced { min } => push_u64(out, "min", *min),
                AgileEvent::StageChanged { from, to } => {
                    push_str(out, "from", from);
                    push_str(out, "to", to);
                }
                AgileEvent::NodesAdded { count } | AgileEvent::NodesEvicted { count } => {
                    push_u64(out, "count", *count);
                }
                AgileEvent::NodesPreDrained { count, partitions }
                | AgileEvent::ReliableRepaired { count, partitions } => {
                    push_u64(out, "count", *count);
                    push_u64(out, "partitions", *partitions);
                }
                AgileEvent::NodesFailedRecovered {
                    count,
                    rolled_back_to,
                } => {
                    push_u64(out, "count", *count);
                    push_u64(out, "rolled_back_to", *rolled_back_to);
                }
                AgileEvent::Faulted { fault } => push_str(out, "fault", fault),
                AgileEvent::Trace { msg } => push_str(out, "msg", msg),
            },
            Event::Session(e) => match e {
                SessionEvent::Launched { reliable } => push_u64(out, "reliable", *reliable),
                SessionEvent::Degraded => {}
                SessionEvent::Restored { degraded_ms } => {
                    push_u64(out, "degraded_ms", *degraded_ms);
                }
                SessionEvent::FallbackLaunched { allocation }
                | SessionEvent::PreDrained { allocation }
                | SessionEvent::ForecastFalseAlert { allocation } => {
                    push_u64(out, "allocation", *allocation);
                }
                SessionEvent::CheckpointTaken {
                    interval_ms,
                    bytes,
                    clock,
                } => {
                    push_u64(out, "interval_ms", *interval_ms);
                    push_u64(out, "bytes", *bytes);
                    push_u64(out, "clock", *clock);
                }
                SessionEvent::CheckpointRestored { clock, work_lost } => {
                    push_u64(out, "clock", *clock);
                    push_u64(out, "work_lost", *work_lost);
                }
                SessionEvent::Finished { cost, clocks } => {
                    push_f64(out, "cost", *cost);
                    push_u64(out, "clocks", *clocks);
                }
            },
            Event::Cost(e) => match e {
                CostEvent::RunStart {
                    scheme,
                    index,
                    start_ms,
                } => {
                    push_str(out, "scheme", scheme);
                    push_u64(out, "index", *index);
                    push_u64(out, "start_ms", *start_ms);
                }
                CostEvent::Sample {
                    cum_cost,
                    cum_work,
                    spot,
                    on_demand,
                    fallback,
                } => {
                    push_f64(out, "cum_cost", *cum_cost);
                    push_f64(out, "cum_work", *cum_work);
                    push_u64(out, "spot", *spot);
                    push_u64(out, "on_demand", *on_demand);
                    push_u64(out, "fallback", *fallback);
                }
                CostEvent::RunEnd {
                    cost,
                    work,
                    evictions,
                    fallback_count,
                } => {
                    push_f64(out, "cost", *cost);
                    push_f64(out, "work", *work);
                    push_u64(out, "evictions", *evictions);
                    push_u64(out, "fallback_count", *fallback_count);
                }
            },
            Event::Fleet(e) => match e {
                FleetEvent::JobAdmitted { job, tier } => {
                    push_u64(out, "job", *job);
                    push_u64(out, "tier", *tier);
                }
                FleetEvent::GangQueued { job, count } => {
                    push_u64(out, "job", *job);
                    push_u64(out, "count", *count);
                }
                FleetEvent::GangLaunched {
                    job,
                    market,
                    count,
                    bid,
                    waited_ms,
                } => {
                    push_u64(out, "job", *job);
                    push_str(out, "market", market);
                    push_u64(out, "count", *count);
                    push_f64(out, "bid", *bid);
                    push_u64(out, "waited_ms", *waited_ms);
                }
                FleetEvent::TrialEarlyKilled { job, work_done } => {
                    push_u64(out, "job", *job);
                    push_f64(out, "work_done", *work_done);
                }
                FleetEvent::PreemptedByPriority { job, by } => {
                    push_u64(out, "job", *job);
                    push_u64(out, "by", *by);
                }
            },
        }
    }
}
