//! Hand-rolled JSONL export (the workspace's serde is an offline stub,
//! so serialization is explicit `format!` work, as in the bench JSON
//! reports).
//!
//! One event per line:
//!
//! ```json
//! {"t_ms":11520000,"seq":4,"kind":"market.spot_granted","market":"us-east-1a/c4.xlarge","allocation":3,"count":4,"bid":0.5}
//! ```
//!
//! `t_ms` stamps are monotone non-decreasing within one recorder's
//! export, and floats are rendered with Rust's shortest-roundtrip
//! `Display`, so identical timelines serialize to identical bytes.

use crate::timeline::Timeline;

/// Appends `,"name":"escaped-value"`.
pub(crate) fn push_str(out: &mut String, name: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
}

/// Appends a decimal integer without going through `core::fmt` — the
/// formatter machinery is the export's hot path (~270k field writes in
/// a paper-scale study), and a manual digit loop is several times
/// cheaper.
pub(crate) fn push_raw_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // Digits are ASCII by construction.
    out.push_str(std::str::from_utf8(&buf[i..]).unwrap_or("0"));
}

/// Appends `,"name":value` for an integer.
pub(crate) fn push_u64(out: &mut String, name: &str, value: u64) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    push_raw_u64(out, value);
}

/// Appends `,"name":value` for a float; non-finite values become
/// `null` (JSON has no NaN/∞). Floats keep Rust's shortest-roundtrip
/// `Display` so identical timelines serialize to identical bytes.
pub(crate) fn push_f64(out: &mut String, name: &str, value: f64) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    if value.is_finite() {
        use std::fmt::Write;
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

/// JSON string escaping for the characters that can actually occur in
/// market keys, stage names, and trace messages.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serializes a timeline to JSONL, appending to `out`.
pub fn write_timeline(tl: &Timeline, out: &mut String) {
    write_events(&tl.events, out);
}

/// Serializes a slice of timed events to JSONL, appending to `out`.
pub(crate) fn write_events(events: &[crate::timeline::TimedEvent], out: &mut String) {
    for e in events {
        out.push_str("{\"t_ms\":");
        push_raw_u64(out, e.t.as_millis());
        out.push_str(",\"seq\":");
        push_raw_u64(out, e.seq);
        out.push_str(",\"kind\":\"");
        out.push_str(e.event.kind());
        out.push('"');
        e.event.write_fields(out);
        out.push_str("}\n");
    }
}

/// Renders a timeline to a standalone JSONL string.
pub fn to_string(tl: &Timeline) -> String {
    let mut out = String::new();
    write_timeline(tl, &mut out);
    out
}

/// The export path named by [`crate::OBS_OUT_ENV`], if set and
/// non-empty.
pub fn export_path() -> Option<String> {
    match std::env::var(crate::OBS_OUT_ENV) {
        Ok(p) if !p.is_empty() => Some(p),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, MarketEvent};
    use crate::timeline::TimedEvent;
    use proteus_simtime::SimTime;

    #[test]
    fn serializes_one_object_per_line() {
        let tl = Timeline {
            events: vec![
                TimedEvent {
                    t: SimTime::from_millis(1000),
                    seq: 0,
                    event: Event::Market(MarketEvent::SpotGranted {
                        market: "us-east-1a/c4.xlarge".into(),
                        allocation: 3,
                        count: 4,
                        bid: 0.5,
                    }),
                },
                TimedEvent {
                    t: SimTime::from_millis(2000),
                    seq: 1,
                    event: Event::Market(MarketEvent::Evicted { allocation: 3 }),
                },
            ],
        };
        let s = to_string(&tl);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t_ms\":1000,\"seq\":0,\"kind\":\"market.spot_granted\",\
             \"market\":\"us-east-1a/c4.xlarge\",\"allocation\":3,\"count\":4,\"bid\":0.5}"
        );
        assert_eq!(
            lines[1],
            "{\"t_ms\":2000,\"seq\":1,\"kind\":\"market.evicted\",\"allocation\":3}"
        );
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut out = String::new();
        push_str(&mut out, "msg", "a\"b\\c\nd\u{1}");
        assert_eq!(out, ",\"msg\":\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        push_f64(&mut out, "x", f64::NAN);
        push_f64(&mut out, "y", f64::INFINITY);
        push_f64(&mut out, "z", 1.25);
        assert_eq!(out, ",\"x\":null,\"y\":null,\"z\":1.25");
    }
}
