//! Deterministic, sim-time-native observability for the Proteus
//! reproduction: typed events, a metrics registry, and queryable
//! timelines (paper Figs. 1, 9, 10 and the Eq. 4 decision trail).
//!
//! Every record is keyed to [`SimTime`](proteus_simtime::SimTime), never
//! the wall clock, so two runs with the same seed produce *byte-identical*
//! timelines regardless of thread count or host speed. The subsystem is
//! strictly passive: recording never feeds back into any decision or RNG
//! draw, so a run with a recorder attached computes exactly what the same
//! run computes without one.
//!
//! # Architecture
//!
//! - [`Event`] — one typed enum per subsystem ([`MarketEvent`],
//!   [`BidEvent`], [`AgileEvent`], [`SessionEvent`], [`CostEvent`]),
//!   primitive-only payloads so the JSONL schema is stable.
//! - [`Recorder`] — the shared sink: an append-only event log plus a
//!   metrics registry (counters, sim-time-weighted gauges/histograms,
//!   span timings) behind one cheap mutex, and an embedded sim clock for
//!   components that cannot thread a `SimTime` through their call path.
//! - [`Timeline`] — an owned snapshot queryable from tests, replacing
//!   brittle stdout assertions.
//! - [`jsonl`] — a hand-rolled JSONL exporter (this workspace has no
//!   real serde); `PROTEUS_OBS_OUT` names the export file.
//!
//! # Zero cost when off
//!
//! Components hold `Option<Arc<Recorder>>` and guard every emission with
//! `if let Some(rec) = …` — event construction lives *inside* the guard,
//! so the disabled path is a single branch with no allocation and
//! fault-free benches stay bit-identical.

// Observability must never panic a run it is passively watching; any
// retained expect must document a real invariant at its use site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod event;
pub mod jsonl;
pub mod metrics;
pub mod recorder;
pub mod timeline;

pub use event::{AgileEvent, BidEvent, CostEvent, Event, FleetEvent, MarketEvent, SessionEvent};
pub use metrics::{MetricsSnapshot, SpanStats, TimeWeightedHist};
pub use recorder::Recorder;
pub use timeline::{TimedEvent, Timeline};

/// Environment variable naming the JSONL export file for study/session
/// timelines. Unset means "do not export".
pub const OBS_OUT_ENV: &str = "PROTEUS_OBS_OUT";

/// A new recorder behind an [`Arc`](std::sync::Arc), ready to hand to
/// several subsystems at once.
pub fn shared() -> std::sync::Arc<Recorder> {
    std::sync::Arc::new(Recorder::new())
}
