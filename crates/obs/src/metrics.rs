//! The metrics registry: counters, sim-time-weighted gauges and
//! histograms, and span timings — all keyed to [`SimTime`], never the
//! wall clock, and all iterated in `BTreeMap` order so snapshots are
//! deterministic.

use std::collections::BTreeMap;

use proteus_simtime::{SimDuration, SimTime};

/// A histogram whose weight axis is *sim time*: each observed value
/// accumulates the duration it was in effect, so "how long was the
/// session degraded" is `time_at(1.0)` on a 0/1 gauge and matches the
/// session report's own accounting to the millisecond.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeWeightedHist {
    /// Accumulated duration per exact value (`f64::to_bits` keyed, so
    /// ordering and equality are bit-precise and deterministic).
    weights: BTreeMap<u64, SimDuration>,
}

impl TimeWeightedHist {
    /// Adds `duration` of sim time spent at `value`.
    pub fn add(&mut self, value: f64, duration: SimDuration) {
        if duration.is_zero() {
            return;
        }
        *self.weights.entry(value.to_bits()).or_default() += duration;
    }

    /// Total sim time spent at exactly `value`.
    pub fn time_at(&self, value: f64) -> SimDuration {
        self.weights
            .get(&value.to_bits())
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Total sim time spent at values satisfying `pred`.
    pub fn time_where(&self, mut pred: impl FnMut(f64) -> bool) -> SimDuration {
        self.weights
            .iter()
            .filter(|(bits, _)| pred(f64::from_bits(**bits)))
            .map(|(_, d)| *d)
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }

    /// Total accumulated sim time across all values.
    pub fn total(&self) -> SimDuration {
        self.weights
            .values()
            .fold(SimDuration::ZERO, |acc, d| acc + *d)
    }

    /// Time-weighted mean value, or `None` if nothing was recorded.
    pub fn weighted_mean(&self) -> Option<f64> {
        let total = self.total();
        if total.is_zero() {
            return None;
        }
        let sum: f64 = self
            .weights
            .iter()
            .map(|(bits, d)| f64::from_bits(*bits) * d.as_millis() as f64)
            .sum();
        Some(sum / total.as_millis() as f64)
    }

    /// Distinct values observed, in ascending bit order.
    pub fn values(&self) -> impl Iterator<Item = (f64, SimDuration)> + '_ {
        self.weights
            .iter()
            .map(|(bits, d)| (f64::from_bits(*bits), *d))
    }
}

/// A gauge that remembers *when* it was last set and folds elapsed sim
/// time into a [`TimeWeightedHist`] on every transition.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct TimeWeightedGauge {
    /// Last set point: (time, value).
    current: Option<(SimTime, f64)>,
    pub(crate) hist: TimeWeightedHist,
}

impl TimeWeightedGauge {
    /// Sets the gauge to `value` at `t`, crediting the previous value
    /// with the sim time since it was set. Out-of-order sets credit
    /// zero time (saturating), never panic.
    pub(crate) fn set(&mut self, t: SimTime, value: f64) {
        if let Some((t0, v0)) = self.current {
            self.hist.add(v0, t.since(t0));
        }
        self.current = Some((t, value));
    }

    /// Folds time up to `t` into the histogram without changing the
    /// current value — call before reading when a run ends.
    pub(crate) fn close(&mut self, t: SimTime) {
        if let Some((t0, v0)) = self.current {
            self.hist.add(v0, t.since(t0));
            self.current = Some((t, v0));
        }
    }

    pub(crate) fn value(&self) -> Option<f64> {
        self.current.map(|(_, v)| v)
    }
}

/// Aggregate timing for a named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans.
    pub count: u64,
    /// Total sim time across completed spans.
    pub total: SimDuration,
    /// Longest single span.
    pub max: SimDuration,
}

/// The registry proper. Names are `&'static str` — metric names are
/// code, not data.
#[derive(Debug, Clone, Default)]
pub(crate) struct MetricsRegistry {
    pub(crate) counters: BTreeMap<&'static str, u64>,
    pub(crate) gauges: BTreeMap<&'static str, TimeWeightedGauge>,
    pub(crate) hists: BTreeMap<&'static str, TimeWeightedHist>,
    pub(crate) spans: BTreeMap<&'static str, SpanStats>,
}

impl MetricsRegistry {
    pub(crate) fn counter_add(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_default() += by;
    }

    pub(crate) fn gauge_set(&mut self, name: &'static str, t: SimTime, value: f64) {
        self.gauges.entry(name).or_default().set(t, value);
    }

    pub(crate) fn hist_add(&mut self, name: &'static str, value: f64, duration: SimDuration) {
        self.hists.entry(name).or_default().add(value, duration);
    }

    pub(crate) fn span(&mut self, name: &'static str, start: SimTime, end: SimTime) {
        let s = self.spans.entry(name).or_default();
        let d = end.since(start);
        s.count += 1;
        s.total += d;
        s.max = s.max.max(d);
    }

    pub(crate) fn close_gauges(&mut self, t: SimTime) {
        for g in self.gauges.values_mut() {
            g.close(t);
        }
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, g)| (*k, (g.value(), g.hist.clone())))
                .collect(),
            hists: self.hists.clone(),
            spans: self.spans.clone(),
        }
    }
}

/// An owned, queryable copy of the registry at one instant.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Per-gauge current value and time-at-value histogram.
    pub gauges: BTreeMap<&'static str, (Option<f64>, TimeWeightedHist)>,
    /// Free-standing sim-time-weighted histograms.
    pub hists: BTreeMap<&'static str, TimeWeightedHist>,
    /// Span timings by name.
    pub spans: BTreeMap<&'static str, SpanStats>,
}

impl MetricsSnapshot {
    /// Counter value, zero if never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Time-at-value histogram of a gauge, empty if never set.
    pub fn gauge_hist(&self, name: &str) -> TimeWeightedHist {
        self.gauges
            .get(name)
            .map(|(_, h)| h.clone())
            .unwrap_or_default()
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).and_then(|(v, _)| *v)
    }

    /// Span stats, zeroed if the span never completed.
    pub fn span(&self, name: &str) -> SpanStats {
        self.spans.get(name).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn hist_accumulates_per_value() {
        let mut h = TimeWeightedHist::default();
        h.add(0.0, SimDuration::from_secs(10));
        h.add(1.0, SimDuration::from_secs(5));
        h.add(1.0, SimDuration::from_secs(7));
        h.add(2.5, SimDuration::ZERO); // zero weight is dropped
        assert_eq!(h.time_at(0.0), SimDuration::from_secs(10));
        assert_eq!(h.time_at(1.0), SimDuration::from_secs(12));
        assert_eq!(h.time_at(2.5), SimDuration::ZERO);
        assert_eq!(h.total(), SimDuration::from_secs(22));
    }

    #[test]
    fn hist_weighted_mean() {
        let mut h = TimeWeightedHist::default();
        assert_eq!(h.weighted_mean(), None);
        h.add(0.0, SimDuration::from_secs(30));
        h.add(1.0, SimDuration::from_secs(10));
        let mean = h.weighted_mean().unwrap();
        assert!((mean - 0.25).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    fn hist_time_where_predicate() {
        let mut h = TimeWeightedHist::default();
        h.add(1.0, SimDuration::from_secs(3));
        h.add(4.0, SimDuration::from_secs(5));
        h.add(9.0, SimDuration::from_secs(7));
        assert_eq!(h.time_where(|v| v >= 4.0), SimDuration::from_secs(12));
    }

    #[test]
    fn gauge_credits_elapsed_time_to_previous_value() {
        let mut g = TimeWeightedGauge::default();
        g.set(t(0), 0.0);
        g.set(t(60_000), 1.0); // degraded at t=60s
        g.set(t(150_000), 0.0); // restored at t=150s
        g.close(t(200_000));
        assert_eq!(g.hist.time_at(1.0), SimDuration::from_secs(90));
        assert_eq!(g.hist.time_at(0.0), SimDuration::from_secs(110));
        assert_eq!(g.value(), Some(0.0));
    }

    #[test]
    fn gauge_close_is_idempotent_for_elapsed_time() {
        let mut g = TimeWeightedGauge::default();
        g.set(t(0), 2.0);
        g.close(t(10_000));
        g.close(t(10_000));
        assert_eq!(g.hist.time_at(2.0), SimDuration::from_secs(10));
    }

    #[test]
    fn gauge_out_of_order_set_saturates() {
        let mut g = TimeWeightedGauge::default();
        g.set(t(100_000), 1.0);
        g.set(t(50_000), 0.0); // earlier than last set: credits zero
        assert_eq!(g.hist.time_at(1.0), SimDuration::ZERO);
    }

    #[test]
    fn registry_snapshot_is_deterministic() {
        let mut r = MetricsRegistry::default();
        r.counter_add("b", 2);
        r.counter_add("a", 1);
        r.counter_add("b", 3);
        r.span("s", t(0), t(5_000));
        r.span("s", t(5_000), t(6_000));
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), 1);
        assert_eq!(snap.counter("b"), 5);
        assert_eq!(snap.counter("missing"), 0);
        let s = snap.span("s");
        assert_eq!(s.count, 2);
        assert_eq!(s.total, SimDuration::from_secs(6));
        assert_eq!(s.max, SimDuration::from_secs(5));
        let keys: Vec<_> = snap.counters.keys().copied().collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
