//! The shared recorder: one cheap mutex around an append-only event log
//! and the metrics registry, plus an embedded sim clock for components
//! whose call paths do not carry a `SimTime` (the wall-clock training
//! plane, for instance).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use proteus_simtime::{SimDuration, SimTime};

use crate::event::Event;
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::timeline::{TimedEvent, Timeline};

#[derive(Default)]
struct Inner {
    events: Vec<TimedEvent>,
    metrics: MetricsRegistry,
}

/// The recorder. Clone an `Arc<Recorder>` into every subsystem that
/// should feed the same timeline; hold `Option<Arc<Recorder>>` and
/// guard each emission so the disabled path stays allocation-free.
///
/// Recording is passive by contract: nothing read back from a recorder
/// may influence a simulation decision or an RNG draw.
#[derive(Default)]
pub struct Recorder {
    inner: Mutex<Inner>,
    /// Sim "now" in millis, advanced by whoever owns the sim clock and
    /// read by components that only see wall time.
    clock: AtomicU64,
}

impl Recorder {
    /// A fresh recorder at sim epoch. The event log is pre-reserved so
    /// early emissions don't pay repeated growth-realloc copies.
    pub fn new() -> Self {
        let rec = Recorder::default();
        rec.inner.lock().events.reserve(64);
        rec
    }

    /// Advances the embedded sim clock (monotone by convention; the
    /// recorder does not enforce it, timestamps come from the caller).
    pub fn set_now(&self, t: SimTime) {
        self.clock.store(t.as_millis(), Ordering::Release);
    }

    /// The embedded sim clock's current value.
    pub fn now(&self) -> SimTime {
        SimTime::from_millis(self.clock.load(Ordering::Acquire))
    }

    /// Appends `event` stamped `t`.
    pub fn record(&self, t: SimTime, event: Event) {
        let mut inner = self.inner.lock();
        let seq = inner.events.len() as u64;
        inner.events.push(TimedEvent { t, seq, event });
    }

    /// Appends `event` stamped with the embedded sim clock.
    pub fn record_now(&self, event: Event) {
        self.record(self.now(), event);
    }

    /// Increments a counter.
    pub fn counter_add(&self, name: &'static str, by: u64) {
        self.inner.lock().metrics.counter_add(name, by);
    }

    /// Reads a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .metrics
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Sets a sim-time-weighted gauge at `t`; elapsed time since the
    /// previous set is credited to the previous value.
    pub fn gauge_set(&self, name: &'static str, t: SimTime, value: f64) {
        self.inner.lock().metrics.gauge_set(name, t, value);
    }

    /// Adds a direct observation to a sim-time-weighted histogram.
    pub fn hist_add(&self, name: &'static str, value: f64, duration: SimDuration) {
        self.inner.lock().metrics.hist_add(name, value, duration);
    }

    /// Records a completed span.
    pub fn span(&self, name: &'static str, start: SimTime, end: SimTime) {
        self.inner.lock().metrics.span(name, start, end);
    }

    /// Folds open gauge intervals up to `t` — call when a run ends so
    /// time-at-value reads cover the full horizon.
    pub fn close_gauges(&self, t: SimTime) {
        self.inner.lock().metrics.close_gauges(t);
    }

    /// An owned snapshot of the event log.
    pub fn timeline(&self) -> Timeline {
        Timeline {
            events: self.inner.lock().events.clone(),
        }
    }

    /// An owned snapshot of the metrics registry.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.lock().metrics.snapshot()
    }

    /// Serializes the current timeline to JSONL. Renders under the lock
    /// rather than snapshotting first — cloning every event (and its
    /// strings) just to serialize them would dominate export cost.
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::with_capacity(inner.events.len() * 96);
        crate::jsonl::write_events(&inner.events, &mut out);
        out
    }

    /// Appends the current timeline's JSONL to `out` — the allocation-
    /// shy form of [`Self::to_jsonl`] for merging many recorders into
    /// one export.
    pub fn append_jsonl(&self, out: &mut String) {
        let inner = self.inner.lock();
        out.reserve(inner.events.len() * 96);
        crate::jsonl::write_events(&inner.events, out);
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Recorder")
            .field("events", &inner.events.len())
            .field("now_ms", &self.clock.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SessionEvent;

    #[test]
    fn records_in_append_order_with_sequence_numbers() {
        let rec = Recorder::new();
        rec.record(
            SimTime::from_millis(10),
            Event::Session(SessionEvent::Degraded),
        );
        rec.set_now(SimTime::from_millis(25));
        rec.record_now(Event::Session(SessionEvent::Restored { degraded_ms: 15 }));
        let tl = rec.timeline();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.events[0].seq, 0);
        assert_eq!(tl.events[1].seq, 1);
        assert_eq!(tl.events[1].t, SimTime::from_millis(25));
        assert!(tl.is_monotone());
    }

    #[test]
    fn clock_round_trips() {
        let rec = Recorder::new();
        assert_eq!(rec.now(), SimTime::EPOCH);
        rec.set_now(SimTime::from_hours(3));
        assert_eq!(rec.now(), SimTime::from_hours(3));
    }

    #[test]
    fn metrics_are_shared_and_snapshotted() {
        let rec = Recorder::new();
        rec.counter_add("x", 2);
        rec.counter_add("x", 1);
        rec.gauge_set("g", SimTime::EPOCH, 1.0);
        rec.close_gauges(SimTime::from_millis(500));
        rec.span("s", SimTime::EPOCH, SimTime::from_millis(100));
        assert_eq!(rec.counter("x"), 3);
        let snap = rec.metrics();
        assert_eq!(snap.counter("x"), 3);
        assert_eq!(
            snap.gauge_hist("g").time_at(1.0),
            SimDuration::from_millis(500)
        );
        assert_eq!(snap.span("s").count, 1);
    }
}
