//! Owned, queryable event timelines — the in-memory sink tests assert
//! against instead of scraping stdout.

use proteus_simtime::SimTime;

use crate::event::Event;

/// One recorded event with its sim-time stamp and a per-recorder
/// sequence number that makes ordering total even within a timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// When the event happened, in sim time.
    pub t: SimTime,
    /// Append order within the recorder (0-based).
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

/// An owned snapshot of a recorder's event log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Events in append order.
    pub events: Vec<TimedEvent>,
}

impl Timeline {
    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events whose kind starts with `prefix` (e.g. `"market."` for a
    /// whole subsystem, `"market.evicted"` for one kind).
    pub fn of_kind<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TimedEvent> + 'a {
        self.events
            .iter()
            .filter(move |e| e.event.kind().starts_with(prefix))
    }

    /// How many events match `prefix` (see [`Timeline::of_kind`]).
    pub fn count(&self, prefix: &str) -> usize {
        self.of_kind(prefix).count()
    }

    /// First event matching `prefix`, if any.
    pub fn first<'a>(&'a self, prefix: &str) -> Option<&'a TimedEvent> {
        self.events
            .iter()
            .find(|e| e.event.kind().starts_with(prefix))
    }

    /// True when sim-time stamps never decrease in append order — the
    /// monotonicity the exporter's schema promises.
    pub fn is_monotone(&self) -> bool {
        self.events.windows(2).all(|w| w[0].t <= w[1].t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MarketEvent, SessionEvent};

    fn ev(t_ms: u64, seq: u64, event: Event) -> TimedEvent {
        TimedEvent {
            t: SimTime::from_millis(t_ms),
            seq,
            event,
        }
    }

    #[test]
    fn queries_filter_by_kind_prefix() {
        let tl = Timeline {
            events: vec![
                ev(0, 0, Event::Session(SessionEvent::Degraded)),
                ev(5, 1, Event::Market(MarketEvent::Evicted { allocation: 7 })),
                ev(9, 2, Event::Market(MarketEvent::Launched { allocation: 8 })),
            ],
        };
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.count("market."), 2);
        assert_eq!(tl.count("market.evicted"), 1);
        assert_eq!(tl.count("bid."), 0);
        assert!(tl.first("session.").is_some());
        assert!(tl.is_monotone());
    }

    #[test]
    fn monotonicity_detects_regressions() {
        let tl = Timeline {
            events: vec![
                ev(10, 0, Event::Session(SessionEvent::Degraded)),
                ev(5, 1, Event::Session(SessionEvent::Degraded)),
            ],
        };
        assert!(!tl.is_monotone());
    }
}
