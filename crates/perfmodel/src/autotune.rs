//! Automated stage-threshold selection.
//!
//! The paper sets the 1:1 and 15:1 stage thresholds by measuring system
//! performance at a few ratios and notes that "future work can automate
//! the threshold selection process for any given cluster" (Sec. 3.3).
//! This module implements that: sweep the performance model over the
//! ratio axis for a given cluster and workload, find where each stage
//! stops winning, and return the crossover ratios AgileML should use.

use crate::layout::{time_per_iteration, ClusterSpec, Layout};
use crate::workload::AppTraffic;

/// Thresholds produced by [`auto_thresholds`]: use stage 2 above
/// `stage2_ratio`, stage 3 above `stage3_ratio` (transient:reliable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageThresholds {
    /// Ratio above which stage 2 beats stage 1.
    pub stage2_ratio: f64,
    /// Ratio above which stage 3 beats stage 2.
    pub stage3_ratio: f64,
}

/// The fastest stage at one `(reliable, transient)` split.
fn best_stage(spec: ClusterSpec, app: AppTraffic, reliable: u32, transient: u32) -> u8 {
    let total = reliable + transient;
    let s1 = time_per_iteration(
        spec,
        app,
        Layout::Stage1 {
            reliable_ps: reliable,
            total,
        },
    );
    if transient == 0 {
        return 1;
    }
    let active = (transient / 2).max(1);
    let s2 = time_per_iteration(
        spec,
        app,
        Layout::Stage2 {
            reliable,
            transient,
            active_ps: active,
        },
    );
    let s3 = time_per_iteration(
        spec,
        app,
        Layout::Stage3 {
            reliable,
            transient,
            active_ps: active,
        },
    );
    if s1 <= s2 && s1 <= s3 {
        1
    } else if s2 <= s3 {
        2
    } else {
        3
    }
}

/// Sweeps reliable:transient splits of a `total`-machine cluster and
/// returns the stage-switch ratios where the model's preferred stage
/// changes.
///
/// The sweep walks every reliable count from `total/2` down to 1 (ratio
/// 1:1 up to `(total-1):1`); the returned thresholds are the geometric
/// midpoints between the last ratio a stage won and the first ratio the
/// next stage won, mirroring how the paper picked 1:1 and 15:1 from its
/// Fig. 11–13 measurements.
///
/// # Panics
///
/// Panics if `total < 4` — too few machines to express the three
/// stages.
pub fn auto_thresholds(spec: ClusterSpec, app: AppTraffic, total: u32) -> StageThresholds {
    assert!(total >= 4, "need at least 4 machines to tune thresholds");
    let mut last_stage1 = 0.0f64;
    let mut first_stage2 = f64::INFINITY;
    let mut last_stage2 = 0.0f64;
    let mut first_stage3 = f64::INFINITY;

    let mut reliable = total / 2;
    while reliable >= 1 {
        let transient = total - reliable;
        let ratio = f64::from(transient) / f64::from(reliable);
        match best_stage(spec, app, reliable, transient) {
            1 => last_stage1 = last_stage1.max(ratio),
            2 => {
                first_stage2 = first_stage2.min(ratio);
                last_stage2 = last_stage2.max(ratio);
            }
            _ => first_stage3 = first_stage3.min(ratio),
        }
        reliable -= 1;
    }

    let mid = |lo: f64, hi: f64| {
        if !hi.is_finite() {
            f64::from(total) // Never reached: place beyond the sweep.
        } else if lo <= 0.0 {
            hi / 2.0
        } else {
            (lo * hi).sqrt()
        }
    };
    StageThresholds {
        stage2_ratio: mid(last_stage1, first_stage2),
        stage3_ratio: mid(last_stage2, first_stage3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn mf_thresholds_bracket_the_papers_settings() {
        let t = auto_thresholds(ClusterSpec::cluster_a(), presets::mf_netflix_rank1000(), 64);
        // Paper: stage 2 above 1:1, stage 3 above 15:1. The automated
        // sweep should land in the same neighbourhoods.
        assert!(
            t.stage2_ratio >= 1.0 && t.stage2_ratio <= 4.0,
            "stage-2 threshold near 1:1..3:1, got {}",
            t.stage2_ratio
        );
        assert!(
            t.stage3_ratio >= 7.0 && t.stage3_ratio <= 32.0,
            "stage-3 threshold near 15:1, got {}",
            t.stage3_ratio
        );
        assert!(t.stage2_ratio < t.stage3_ratio);
    }

    #[test]
    fn compute_bound_apps_stay_in_stage1_longer() {
        // With negligible traffic, stage 1 never bottlenecks, so the
        // stage-2 threshold is pushed far out.
        let app = AppTraffic {
            compute_core_secs: 100_000.0,
            read_mb: 1.0,
            update_mb: 1.0,
            backup_mb: 1.0,
        };
        let t = auto_thresholds(ClusterSpec::cluster_a(), app, 64);
        assert!(
            t.stage2_ratio > 10.0,
            "compute-bound workloads do not need tiering: {}",
            t.stage2_ratio
        );
    }

    #[test]
    #[should_panic(expected = "at least 4 machines")]
    fn tiny_clusters_are_rejected() {
        auto_thresholds(ClusterSpec::cluster_a(), presets::mf_netflix_rank1000(), 2);
    }
}
