//! Layouts and the bottleneck time-per-iteration model.

use serde::{Deserialize, Serialize};

use crate::workload::AppTraffic;

/// Homogeneous cluster hardware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Worker cores per machine.
    pub cores_per_machine: u32,
    /// Full-duplex NIC bandwidth per machine, MB/s per direction.
    pub bw_mbps: f64,
}

impl ClusterSpec {
    /// The paper's Cluster-A: c4.2xlarge (8 vCPUs), ~1 Gbps.
    pub fn cluster_a() -> Self {
        ClusterSpec {
            cores_per_machine: 8,
            bw_mbps: 125.0,
        }
    }

    /// The paper's Cluster-B: c4.xlarge (4 vCPUs), ~1 Gbps.
    pub fn cluster_b() -> Self {
        ClusterSpec {
            cores_per_machine: 4,
            bw_mbps: 125.0,
        }
    }
}

/// A functional layout of the cluster (who serves, who works, who backs
/// up) — the paper's Fig. 4 plus the traditional baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layout {
    /// Traditional parameter server: every machine is reliable and runs
    /// both a PS shard and workers.
    Traditional {
        /// Machine count.
        machines: u32,
    },
    /// Stage 1: PS shards only on the `reliable_ps` reliable machines;
    /// every machine (reliable and transient) runs workers.
    Stage1 {
        /// Machines hosting PS shards (the reliable tier).
        reliable_ps: u32,
        /// Total machines (reliable + transient).
        total: u32,
    },
    /// Stage 2: `active_ps` of the transient machines host ActivePSs;
    /// reliable machines host BackupPSs; workers run everywhere.
    Stage2 {
        /// Reliable machine count (backup holders, also workers).
        reliable: u32,
        /// Transient machine count.
        transient: u32,
        /// ActivePS hosts among the transient machines.
        active_ps: u32,
    },
    /// Stage 3: like stage 2 but reliable machines run no workers.
    Stage3 {
        /// Reliable machine count (backup holders only).
        reliable: u32,
        /// Transient machine count (all workers).
        transient: u32,
        /// ActivePS hosts among the transient machines.
        active_ps: u32,
    },
}

impl Layout {
    /// Number of machines running workers.
    pub fn worker_machines(&self) -> u32 {
        match *self {
            Layout::Traditional { machines } => machines,
            Layout::Stage1 { total, .. } => total,
            Layout::Stage2 {
                reliable,
                transient,
                ..
            } => reliable + transient,
            Layout::Stage3 { transient, .. } => transient,
        }
    }

    /// Number of machines hosting serving PS shards.
    pub fn server_machines(&self) -> u32 {
        match *self {
            Layout::Traditional { machines } => machines,
            Layout::Stage1 { reliable_ps, .. } => reliable_ps,
            Layout::Stage2 { active_ps, .. } | Layout::Stage3 { active_ps, .. } => active_ps,
        }
    }

    /// Validates structural constraints.
    pub fn validate(&self) -> Result<(), String> {
        let ok = match *self {
            Layout::Traditional { machines } => machines > 0,
            Layout::Stage1 { reliable_ps, total } => reliable_ps > 0 && total >= reliable_ps,
            Layout::Stage2 {
                reliable,
                transient,
                active_ps,
            }
            | Layout::Stage3 {
                reliable,
                transient,
                active_ps,
            } => reliable > 0 && active_ps > 0 && active_ps <= transient,
        };
        if ok {
            Ok(())
        } else {
            Err(format!("invalid layout {self:?}"))
        }
    }
}

/// Time per iteration (seconds) for an app on a cluster under a layout.
///
/// The model: compute is spread evenly over worker cores; read volume is
/// served by PS hosts (NIC out) to workers (NIC in); update volume flows
/// workers → PS hosts; coalesced backup pushes flow ActivePS → BackupPS.
/// A machine's iteration time is the max of its compute and its NIC
/// drain in each direction; the iteration is gated by the slowest
/// machine that *participates* in the iteration (pure-backup machines in
/// stage 3 absorb their inflow asynchronously and do not gate).
///
/// # Panics
///
/// Panics on an invalid layout or workload (programmer error in
/// experiment definitions).
// The panic contract above is the API: experiment definitions are
// static literals and a bad one must fail loudly at construction.
#[allow(clippy::expect_used)]
pub fn time_per_iteration(spec: ClusterSpec, app: AppTraffic, layout: Layout) -> f64 {
    layout.validate().expect("valid layout");
    app.validate().expect("valid workload");

    let w = f64::from(layout.worker_machines());
    let s = f64::from(layout.server_machines());
    assert!(w > 0.0, "a layout must have workers");
    let bw = spec.bw_mbps;
    let compute = app.compute_core_secs / (w * f64::from(spec.cores_per_machine));

    // Per-machine traffic by role (MB).
    let worker_in = app.read_mb / w;
    let worker_out = app.update_mb / w;
    let server_in = app.update_mb / s;
    let server_out = app.read_mb / s;

    let mut gating: Vec<f64> = Vec::new();

    match layout {
        Layout::Traditional { .. } => {
            // Every machine: worker + server shard.
            let t_in = (worker_in + server_in) / bw;
            let t_out = (worker_out + server_out) / bw;
            gating.push(compute.max(t_in).max(t_out));
        }
        Layout::Stage1 { reliable_ps, total } => {
            // Reliable: server + worker.
            let r_in = (worker_in + server_in) / bw;
            let r_out = (worker_out + server_out) / bw;
            gating.push(compute.max(r_in).max(r_out));
            // Transient: worker only.
            if total > reliable_ps {
                let t_in = worker_in / bw;
                let t_out = worker_out / bw;
                gating.push(compute.max(t_in).max(t_out));
            }
        }
        Layout::Stage2 {
            reliable,
            transient,
            active_ps,
        } => {
            let a = f64::from(active_ps);
            let r = f64::from(reliable);
            // ActivePS transient machines: server + worker + backup out.
            let ap_in = (worker_in + server_in) / bw;
            let ap_out = (worker_out + server_out + app.backup_mb / a) / bw;
            gating.push(compute.max(ap_in).max(ap_out));
            // Plain transient workers.
            if transient > active_ps {
                gating.push(compute.max(worker_in / bw).max(worker_out / bw));
            }
            // Reliable machines: worker sharing the NIC with backup
            // inflow — the paper's straggler effect.
            let rel_in = (worker_in + app.backup_mb / r) / bw;
            let rel_out = worker_out / bw;
            gating.push(compute.max(rel_in).max(rel_out));
        }
        Layout::Stage3 {
            transient,
            active_ps,
            ..
        } => {
            let a = f64::from(active_ps);
            let ap_in = (worker_in + server_in) / bw;
            let ap_out = (worker_out + server_out + app.backup_mb / a) / bw;
            gating.push(compute.max(ap_in).max(ap_out));
            if transient > active_ps {
                gating.push(compute.max(worker_in / bw).max(worker_out / bw));
            }
            // Reliable machines only absorb asynchronous backup pushes;
            // they do not gate the iteration.
        }
    }

    gating.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn spec() -> ClusterSpec {
        ClusterSpec::cluster_a()
    }

    fn mf() -> AppTraffic {
        presets::mf_netflix_rank1000()
    }

    #[test]
    fn layout_validation() {
        assert!(Layout::Traditional { machines: 0 }.validate().is_err());
        assert!(Layout::Stage1 {
            reliable_ps: 0,
            total: 4
        }
        .validate()
        .is_err());
        assert!(Layout::Stage2 {
            reliable: 1,
            transient: 4,
            active_ps: 5
        }
        .validate()
        .is_err());
        assert!(Layout::Stage3 {
            reliable: 1,
            transient: 63,
            active_ps: 32
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn stage1_collapses_with_few_servers() {
        // Fig. 11 shape: 4 ParamServs out of 64 is several times slower
        // than traditional; 32 ParamServs is close to traditional.
        let trad = time_per_iteration(spec(), mf(), Layout::Traditional { machines: 64 });
        let ps4 = time_per_iteration(
            spec(),
            mf(),
            Layout::Stage1 {
                reliable_ps: 4,
                total: 64,
            },
        );
        let ps16 = time_per_iteration(
            spec(),
            mf(),
            Layout::Stage1 {
                reliable_ps: 16,
                total: 64,
            },
        );
        let ps32 = time_per_iteration(
            spec(),
            mf(),
            Layout::Stage1 {
                reliable_ps: 32,
                total: 64,
            },
        );
        assert!(ps4 > 4.0 * trad, "4 ParamServs collapse: {ps4} vs {trad}");
        assert!(ps16 > 1.2 * trad && ps16 < ps4);
        assert!(ps32 < 1.15 * trad, "1:1 ratio is near-traditional");
    }

    #[test]
    fn stage2_fixes_middle_ratios_with_residual_straggler() {
        // Fig. 12 shape at 4 reliable + 60 transient.
        let trad = time_per_iteration(spec(), mf(), Layout::Traditional { machines: 64 });
        let s2_16 = time_per_iteration(
            spec(),
            mf(),
            Layout::Stage2 {
                reliable: 4,
                transient: 60,
                active_ps: 16,
            },
        );
        let s2_32 = time_per_iteration(
            spec(),
            mf(),
            Layout::Stage2 {
                reliable: 4,
                transient: 60,
                active_ps: 32,
            },
        );
        let s1_4 = time_per_iteration(
            spec(),
            mf(),
            Layout::Stage1 {
                reliable_ps: 4,
                total: 64,
            },
        );
        assert!(s2_32 < s2_16, "more ActivePSs spread the load");
        assert!(s2_16 < s1_4, "stage 2 beats stage 1 at 15:1");
        let slowdown = s2_32 / trad;
        assert!(
            slowdown > 1.05 && slowdown < 1.4,
            "residual straggler ≈18%, got {slowdown}"
        );
    }

    #[test]
    fn stage3_matches_traditional_at_63_to_1() {
        // Fig. 13 shape.
        let trad = time_per_iteration(spec(), mf(), Layout::Traditional { machines: 64 });
        let s2 = time_per_iteration(
            spec(),
            mf(),
            Layout::Stage2 {
                reliable: 1,
                transient: 63,
                active_ps: 32,
            },
        );
        let s3 = time_per_iteration(
            spec(),
            mf(),
            Layout::Stage3 {
                reliable: 1,
                transient: 63,
                active_ps: 32,
            },
        );
        assert!(s2 > 2.0 * trad, "stage 2 at 63:1 loses ≥2×: {s2} vs {trad}");
        assert!(
            s3 < 1.1 * trad,
            "stage 3 matches traditional: {s3} vs {trad}"
        );
    }

    #[test]
    fn stage2_beats_stage3_at_one_to_one() {
        // Fig. 14 shape: at 8 reliable + 8 transient, stage 3 throws
        // away half the workers and loses.
        let s2 = time_per_iteration(
            spec(),
            mf(),
            Layout::Stage2 {
                reliable: 8,
                transient: 8,
                active_ps: 4,
            },
        );
        let s3 = time_per_iteration(
            spec(),
            mf(),
            Layout::Stage3 {
                reliable: 8,
                transient: 8,
                active_ps: 4,
            },
        );
        assert!(s2 < s3, "stage 2 ({s2}) beats stage 3 ({s3}) at 1:1");
    }

    #[test]
    fn compute_bound_workloads_scale_linearly() {
        let app = AppTraffic {
            compute_core_secs: 10_000.0,
            read_mb: 1.0,
            update_mb: 1.0,
            backup_mb: 1.0,
        };
        let t8 = time_per_iteration(spec(), app, Layout::Traditional { machines: 8 });
        let t16 = time_per_iteration(spec(), app, Layout::Traditional { machines: 16 });
        assert!((t8 / t16 - 2.0).abs() < 1e-9);
    }
}
