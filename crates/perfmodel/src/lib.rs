//! Analytic cluster performance model for AgileML layouts.
//!
//! The paper's Sec. 6.4–6.6 experiments measure time-per-iteration on a
//! real 64-machine EC2 cluster with ~1 Gbps links. That testbed is not
//! available here, so this crate models the *bottleneck arithmetic* those
//! experiments exercise: every machine has a full-duplex NIC; each
//! iteration moves read traffic (parameter server → workers), update
//! traffic (workers → parameter server), and — in stages 2/3 — coalesced
//! backup pushes (ActivePS → BackupPS); time per iteration is the maximum
//! over gating machines of compute time and NIC drain time.
//!
//! The model reproduces the paper's shapes:
//!
//! * stage 1 collapses when few reliable machines serve the whole read
//!   volume (Fig. 11);
//! * stage 2 spreads serving over ActivePSs, leaving a residual straggler
//!   effect on reliable machines whose workers share a NIC with backup
//!   inflow (Fig. 12);
//! * stage 3 removes those workers and matches the traditional layout at
//!   63:1 (Fig. 13), while losing to stage 2 at 1:1 because it discards
//!   half the compute (Fig. 14);
//! * strong scaling stays near ideal for compute-heavy apps (Fig. 15);
//! * elasticity timelines show a one-iteration blip on eviction
//!   (Fig. 16).

// Model arithmetic returns values or typed errors, never panics; any
// retained expect documents a real invariant at its use site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod autotune;
pub mod layout;
pub mod presets;
pub mod series;
pub mod workload;

pub use autotune::{auto_thresholds, StageThresholds};
pub use layout::{time_per_iteration, ClusterSpec, Layout};
pub use series::{elasticity_timeline, scaling_curve, TimelinePhase};
pub use workload::AppTraffic;
