//! Workload presets calibrated to the paper's applications.
//!
//! Calibration targets the paper's reported absolute magnitudes on
//! Cluster-A (64 × c4.2xlarge, ~1 Gbps): traditional MF around 3.5 s per
//! iteration, stage 1 with 4 ParamServs over 20 s, stage 2 with 32
//! ActivePSs ≈18 % over traditional at 15:1, stage 3 matching traditional
//! at 63:1, and LDA strong-scaling from ≈110 s at 4 machines near-ideally
//! down through 64 machines. The numbers are *calibrated*, not derived
//! from first principles — the shapes, not the constants, carry the
//! scientific content.

use crate::workload::AppTraffic;

/// MF on the Netflix dataset with rank-1000 factors (Sec. 6.2/6.4).
///
/// The rank-1000 model is ≈2 GB; reads dominate (rows are fetched by
/// every worker whose ratings touch them) while write-back caching
/// coalesces updates to roughly the model size, and background pushes
/// coalesce further.
pub fn mf_netflix_rank1000() -> AppTraffic {
    AppTraffic {
        compute_core_secs: 1_792.0, // 3.5 s × 512 cores.
        read_mb: 11_000.0,
        update_mb: 2_000.0,
        backup_mb: 1_376.0,
    }
}

/// MLR on ImageNet LLC features (21 504 × 1000 weights ≈ 86 MB model).
///
/// Every worker reads and updates the full model every iteration, so
/// traffic scales with the worker count; at 64 workers that is ≈5.5 GB
/// each way. Compute per datum is large (softmax over 1000 classes).
pub fn mlr_imagenet() -> AppTraffic {
    AppTraffic {
        compute_core_secs: 4_096.0, // 8 s × 512 cores.
        read_mb: 5_500.0,
        update_mb: 5_500.0,
        backup_mb: 86.0,
    }
}

/// LDA on the NYTimes corpus with 1000 topics (Sec. 6.2/6.5).
///
/// Collapsed Gibbs sampling is compute-heavy; the word-topic table is
/// ≈400 MB and only counts that changed are exchanged.
pub fn lda_nytimes() -> AppTraffic {
    AppTraffic {
        compute_core_secs: 3_680.0, // ≈115 s on 4 × 8 cores.
        read_mb: 1_200.0,
        update_mb: 800.0,
        backup_mb: 400.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{time_per_iteration, ClusterSpec, Layout};

    #[test]
    fn presets_are_valid() {
        for app in [mf_netflix_rank1000(), mlr_imagenet(), lda_nytimes()] {
            assert!(app.validate().is_ok());
        }
    }

    #[test]
    fn mf_traditional_is_seconds_scale() {
        let t = time_per_iteration(
            ClusterSpec::cluster_a(),
            mf_netflix_rank1000(),
            Layout::Traditional { machines: 64 },
        );
        assert!((2.0..6.0).contains(&t), "paper shows ~3.5 s, got {t}");
    }

    #[test]
    fn lda_4_machines_is_minutes_scale() {
        let t = time_per_iteration(
            ClusterSpec::cluster_a(),
            lda_nytimes(),
            Layout::Traditional { machines: 4 },
        );
        assert!((90.0..140.0).contains(&t), "paper shows ~110 s, got {t}");
    }
}
