//! Iteration-series simulations: scaling curves and elasticity
//! timelines (paper Figs. 14–16).

use serde::{Deserialize, Serialize};

use crate::layout::{time_per_iteration, ClusterSpec, Layout};
use crate::workload::AppTraffic;

/// One phase of an elasticity timeline: a layout held for a number of
/// iterations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelinePhase {
    /// The layout during this phase.
    pub layout: Layout,
    /// Number of iterations spent in this phase.
    pub iterations: u32,
    /// Relative one-iteration blip applied to the first iteration of the
    /// phase (e.g. 0.13 for the paper's 13 % eviction blip; 0.0 for a
    /// background-prepared addition).
    pub entry_blip: f64,
}

/// Produces a per-iteration time series across a sequence of phases —
/// the shape of the paper's Fig. 16 (and Fig. 14 when both phases share
/// a machine count).
pub fn elasticity_timeline(
    spec: ClusterSpec,
    app: AppTraffic,
    phases: &[TimelinePhase],
) -> Vec<f64> {
    let mut out = Vec::new();
    for phase in phases {
        let base = time_per_iteration(spec, app, phase.layout);
        for i in 0..phase.iterations {
            let blip = if i == 0 { 1.0 + phase.entry_blip } else { 1.0 };
            out.push(base * blip);
        }
    }
    out
}

/// Strong-scaling curve: time per iteration at each machine count, using
/// the stage the paper used at that scale (traditional at 4, stage 1 at
/// 8 with half reliable, stage 3 with one reliable beyond), plus the
/// ideal curve scaled from the smallest point (Fig. 15).
pub fn scaling_curve(spec: ClusterSpec, app: AppTraffic, machines: &[u32]) -> Vec<(u32, f64, f64)> {
    assert!(!machines.is_empty(), "need at least one machine count");
    let base_machines = machines[0];
    let base = time_per_iteration(
        spec,
        app,
        Layout::Traditional {
            machines: base_machines,
        },
    );
    machines
        .iter()
        .map(|&m| {
            let layout = paper_scaling_layout(m, base_machines);
            let t = time_per_iteration(spec, app, layout);
            let ideal = base * f64::from(base_machines) / f64::from(m);
            (m, t, ideal)
        })
        .collect()
}

/// The layout the paper uses at each point of the Fig. 15 scaling study:
/// traditional at the base scale, stage 1 (half reliable) at 2× base,
/// stage 3 with one reliable machine beyond that.
pub fn paper_scaling_layout(machines: u32, base: u32) -> Layout {
    if machines <= base {
        Layout::Traditional { machines }
    } else if machines <= base * 2 {
        Layout::Stage1 {
            reliable_ps: base,
            total: machines,
        }
    } else {
        let transient = machines - 1;
        Layout::Stage3 {
            reliable: 1,
            transient,
            active_ps: (transient / 2).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn spec() -> ClusterSpec {
        ClusterSpec::cluster_a()
    }

    #[test]
    fn timeline_shows_speedup_then_blip_then_recovery() {
        // Fig. 16: 4 reliable → +60 transient at iteration 11 → eviction
        // back to 4 at iteration 35.
        let app = presets::mf_netflix_rank1000();
        let phases = [
            TimelinePhase {
                layout: Layout::Traditional { machines: 4 },
                iterations: 10,
                entry_blip: 0.0,
            },
            TimelinePhase {
                layout: Layout::Stage2 {
                    reliable: 4,
                    transient: 60,
                    active_ps: 32,
                },
                iterations: 24,
                entry_blip: 0.0, // Background incorporation: no blip.
            },
            TimelinePhase {
                layout: Layout::Traditional { machines: 4 },
                iterations: 11,
                entry_blip: 0.13, // The paper's 13 % eviction blip.
            },
        ];
        let series = elasticity_timeline(spec(), app, &phases);
        assert_eq!(series.len(), 45);
        // Adding machines speeds iterations up immediately…
        assert!(series[10] < series[9] * 0.5);
        // …addition has no blip (equal to the next steady iteration)…
        assert_eq!(series[10], series[11]);
        // …eviction has a one-iteration blip…
        assert!(series[34] > series[35]);
        assert!((series[34] / series[35] - 1.13).abs() < 1e-9);
        // …and the post-eviction steady state matches the initial one.
        assert_eq!(series[44], series[0]);
    }

    #[test]
    fn scaling_is_near_ideal_for_lda() {
        // Fig. 15: 4→64 machines, time vs ideal.
        let pts = scaling_curve(spec(), presets::lda_nytimes(), &[4, 8, 16, 32, 64]);
        assert_eq!(pts.len(), 5);
        for (m, t, ideal) in &pts {
            assert!(
                *t <= ideal * 1.35,
                "machines={m}: {t} should stay near ideal {ideal}"
            );
            assert!(*t >= ideal * 0.95, "cannot beat ideal: {t} vs {ideal}");
        }
        // Monotone speedup.
        for w in pts.windows(2) {
            assert!(w[1].1 < w[0].1);
        }
    }

    #[test]
    fn paper_scaling_layouts_match_section_6_5() {
        assert_eq!(
            paper_scaling_layout(4, 4),
            Layout::Traditional { machines: 4 }
        );
        assert_eq!(
            paper_scaling_layout(8, 4),
            Layout::Stage1 {
                reliable_ps: 4,
                total: 8
            }
        );
        assert_eq!(
            paper_scaling_layout(64, 4),
            Layout::Stage3 {
                reliable: 1,
                transient: 63,
                active_ps: 31
            }
        );
    }
}
