//! Per-iteration workload characterization.

use serde::{Deserialize, Serialize};

/// The per-iteration resource demands of one ML application + dataset.
///
/// All volumes are totals across the whole job for one full pass
/// ("iteration" in the paper's figures):
///
/// * `compute_core_secs` — CPU work, spread evenly over worker cores;
/// * `read_mb` — parameter bytes served PS → workers;
/// * `update_mb` — coalesced update bytes workers → PS;
/// * `backup_mb` — coalesced delta bytes ActivePS → BackupPS (bounded by
///   the model size since deltas aggregate per key; typically a fraction
///   of it because not every key changes every iteration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppTraffic {
    /// Total compute per iteration (core-seconds).
    pub compute_core_secs: f64,
    /// Total PS→worker read volume per iteration (MB).
    pub read_mb: f64,
    /// Total worker→PS update volume per iteration (MB).
    pub update_mb: f64,
    /// Total ActivePS→BackupPS coalesced push volume per iteration (MB).
    pub backup_mb: f64,
}

impl AppTraffic {
    /// Validates the workload: all figures must be finite and
    /// non-negative, with some compute.
    pub fn validate(&self) -> Result<(), String> {
        let vals = [
            self.compute_core_secs,
            self.read_mb,
            self.update_mb,
            self.backup_mb,
        ];
        if vals.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err("workload volumes must be finite and non-negative".into());
        }
        if self.compute_core_secs <= 0.0 {
            return Err("an iteration must involve some compute".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_bad_workloads() {
        let good = AppTraffic {
            compute_core_secs: 100.0,
            read_mb: 10.0,
            update_mb: 10.0,
            backup_mb: 5.0,
        };
        assert!(good.validate().is_ok());
        assert!(AppTraffic {
            compute_core_secs: 0.0,
            ..good
        }
        .validate()
        .is_err());
        assert!(AppTraffic {
            read_mb: -1.0,
            ..good
        }
        .validate()
        .is_err());
        assert!(AppTraffic {
            backup_mb: f64::NAN,
            ..good
        }
        .validate()
        .is_err());
    }
}
