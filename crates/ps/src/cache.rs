//! The worker-side parameter cache with write-back update buffering.
//!
//! To reduce cross-machine traffic, parameter-server implementations ship
//! a worker-side library that caches parameter values and buffers updates
//! (Sec. 2.1). Worker threads call `read` and `update`; updates apply to
//! the local cached copy immediately (so the worker sees its own writes)
//! and accumulate in a write-back buffer that is flushed to the server
//! shards once per clock.

use std::collections::HashMap;

use crate::partition::{ParamKey, PartitionId, PartitionMap};
use crate::value::PsValue;

/// A worker's local view of the parameter state.
#[derive(Debug, Clone)]
pub struct WorkerCache<V> {
    layout: PartitionMap,
    /// Locally cached values (server value as of last refresh, plus this
    /// worker's own buffered updates).
    cached: HashMap<ParamKey, V>,
    /// Coalesced updates not yet flushed to the servers.
    buffer: HashMap<ParamKey, V>,
}

impl<V: PsValue> WorkerCache<V> {
    /// Creates an empty cache over the job's partition layout.
    pub fn new(layout: PartitionMap) -> Self {
        WorkerCache {
            layout,
            cached: HashMap::new(),
            buffer: HashMap::new(),
        }
    }

    /// Reads a parameter if cached.
    pub fn read(&self, key: ParamKey) -> Option<&V> {
        self.cached.get(&key)
    }

    /// Whether `key` is materialized locally.
    pub fn contains(&self, key: ParamKey) -> bool {
        self.cached.contains_key(&key)
    }

    /// Applies an update: visible locally at once, buffered for write-back.
    ///
    /// Unknown keys materialize as zero-plus-delta, mirroring
    /// [`ShardStore::apply_update`](crate::ShardStore::apply_update).
    pub fn update(&mut self, key: ParamKey, delta: &V) {
        match self.cached.get_mut(&key) {
            Some(v) => v.merge(delta),
            None => {
                self.cached.insert(key, delta.clone());
            }
        }
        match self.buffer.get_mut(&key) {
            Some(b) => b.merge(delta),
            None => {
                self.buffer.insert(key, delta.clone());
            }
        }
    }

    /// Installs a fresh server value, *preserving* any still-buffered local
    /// updates on top (so the worker continues to see its own writes).
    pub fn refresh(&mut self, key: ParamKey, mut server_value: V) {
        if let Some(pending) = self.buffer.get(&key) {
            server_value.merge(pending);
        }
        self.cached.insert(key, server_value);
    }

    /// Drains the write-back buffer, grouped by destination partition and
    /// sorted by key within each group.
    pub fn flush(&mut self) -> Vec<(PartitionId, Vec<(ParamKey, V)>)> {
        let mut grouped: HashMap<PartitionId, Vec<(ParamKey, V)>> = HashMap::new();
        for (k, v) in self.buffer.drain() {
            grouped
                .entry(self.layout.partition_of(k))
                .or_default()
                .push((k, v));
        }
        let mut out: Vec<(PartitionId, Vec<(ParamKey, V)>)> = grouped.into_iter().collect();
        for (_, batch) in &mut out {
            batch.sort_by_key(|(k, _)| *k);
        }
        out.sort_by_key(|(p, _)| *p);
        out
    }

    /// Whether unflushed updates exist.
    pub fn has_pending(&self) -> bool {
        !self.buffer.is_empty()
    }

    /// Drops all cached values and pending updates (used when a worker's
    /// assignment is rolled back to a recovered snapshot).
    pub fn clear(&mut self) {
        self.cached.clear();
        self.buffer.clear();
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.cached.len()
    }

    /// Whether the cache holds no keys.
    pub fn is_empty(&self) -> bool {
        self.cached.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardStore;
    use crate::value::DenseVec;
    use proptest::prelude::*;

    fn cache(parts: u32) -> WorkerCache<DenseVec> {
        WorkerCache::new(PartitionMap::new(parts).expect("nonzero"))
    }

    fn dv(xs: &[f32]) -> DenseVec {
        DenseVec::from(xs.to_vec())
    }

    #[test]
    fn worker_sees_own_writes_immediately() {
        let mut c = cache(2);
        c.refresh(ParamKey(0), dv(&[1.0]));
        c.update(ParamKey(0), &dv(&[0.5]));
        assert_eq!(c.read(ParamKey(0)).unwrap().as_slice(), &[1.5]);
        assert!(c.has_pending());
    }

    #[test]
    fn refresh_preserves_pending_local_updates() {
        let mut c = cache(2);
        c.refresh(ParamKey(0), dv(&[1.0]));
        c.update(ParamKey(0), &dv(&[10.0]));
        // Server meanwhile advanced to 5.0 (others' updates included).
        c.refresh(ParamKey(0), dv(&[5.0]));
        // Local view = fresh server value + our unflushed delta.
        assert_eq!(c.read(ParamKey(0)).unwrap().as_slice(), &[15.0]);
    }

    #[test]
    fn flush_groups_by_partition_and_drains() {
        let mut c = cache(2);
        c.update(ParamKey(0), &dv(&[1.0])); // partition 0
        c.update(ParamKey(1), &dv(&[2.0])); // partition 1
        c.update(ParamKey(2), &dv(&[3.0])); // partition 0
        let flushed = c.flush();
        assert_eq!(flushed.len(), 2);
        assert_eq!(flushed[0].0, PartitionId(0));
        assert_eq!(flushed[0].1.len(), 2);
        assert_eq!(flushed[1].0, PartitionId(1));
        assert!(!c.has_pending());
        assert!(c.flush().is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = cache(2);
        c.update(ParamKey(0), &dv(&[1.0]));
        c.clear();
        assert!(c.is_empty());
        assert!(!c.has_pending());
        assert!(!c.contains(ParamKey(0)));
    }

    proptest! {
        /// Write-back equivalence: applying a worker's flushed batches to
        /// a shard produces the same state as applying each update to the
        /// shard directly.
        #[test]
        fn flush_equivalent_to_direct_application(
            updates in proptest::collection::vec((0u64..16, -10.0f32..10.0), 1..64)
        ) {
            let layout = PartitionMap::new(4).unwrap();
            let mut direct: ShardStore<DenseVec> = ShardStore::new(layout);
            let mut via_cache: ShardStore<DenseVec> = ShardStore::new(layout);
            let mut c: WorkerCache<DenseVec> = WorkerCache::new(layout);

            for (k, x) in &updates {
                let delta = dv(&[*x]);
                direct.apply_update(ParamKey(*k), &delta);
                c.update(ParamKey(*k), &delta);
            }
            for (_, batch) in c.flush() {
                for (k, v) in batch {
                    via_cache.apply_update(k, &v);
                }
            }
            for k in direct.keys() {
                let a = direct.read(k).unwrap().as_slice()[0];
                let b = via_cache.read(k).unwrap().as_slice()[0];
                prop_assert!((a - b).abs() <= 1e-3 * a.abs().max(1.0));
            }
        }
    }
}
