//! Stale-Synchronous-Parallel (SSP) progress tracking.
//!
//! Parameter-server systems typically bound how stale the values a worker
//! reads may be: a worker at clock `c` may proceed only while the slowest
//! worker is at clock `c - slack` or later. The *consistent state* used by
//! AgileML's recovery (Sec. 3.3, footnote 6) corresponds to the latest
//! clock every worker has passed — it reflects all updates up to that
//! clock and none after.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Tracks per-worker clocks and derives SSP admission and the globally
/// consistent clock.
///
/// Workers are identified by opaque `u32` ids (AgileML maps its worker
/// threads onto them).
///
/// # Examples
///
/// ```
/// use proteus_ps::ClockTable;
///
/// let mut clocks = ClockTable::new(1); // slack of 1 clock
/// clocks.register(0);
/// clocks.register(1);
/// clocks.advance(0, 2);
/// // Worker 0 at clock 2 may not start clock 3 while worker 1 is at 0.
/// assert!(!clocks.may_proceed(2));
/// assert_eq!(clocks.consistent_clock(), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockTable {
    slack: u64,
    clocks: BTreeMap<u32, u64>,
}

impl ClockTable {
    /// Creates a table with the given staleness bound (0 = BSP).
    pub fn new(slack: u64) -> Self {
        ClockTable {
            slack,
            clocks: BTreeMap::new(),
        }
    }

    /// The staleness bound.
    pub fn slack(&self) -> u64 {
        self.slack
    }

    /// Registers a worker starting at clock 0.
    ///
    /// Only for workers joining a *fresh* job: re-adding a worker to a
    /// job whose clocks have advanced must use
    /// [`ClockTable::register_at`], or the newcomer drags
    /// [`ClockTable::consistent_clock`] — the rollback target — back to
    /// zero.
    pub fn register(&mut self, worker: u32) {
        self.register_at(worker, 0);
    }

    /// Registers a worker starting at `clock`.
    ///
    /// Controllers re-adding workers after an eviction or rescale seed
    /// them with the last broadcast minimum so the consistent clock (and
    /// with it the recovery rollback target) never regresses. If the
    /// worker is already registered its clock only moves forward.
    pub fn register_at(&mut self, worker: u32, clock: u64) {
        let entry = self.clocks.entry(worker).or_insert(clock);
        if clock > *entry {
            *entry = clock;
        }
    }

    /// Removes a worker (evicted or reassigned); its clock no longer
    /// holds others back.
    pub fn deregister(&mut self, worker: u32) {
        self.clocks.remove(&worker);
    }

    /// Sets `worker`'s clock to `clock` (clocks never move backwards; a
    /// smaller value is ignored).
    ///
    /// Reports from workers that are not registered are ignored — an
    /// evicted worker's in-flight clock report must not resurrect it.
    pub fn advance(&mut self, worker: u32, clock: u64) {
        if let Some(entry) = self.clocks.get_mut(&worker) {
            if clock > *entry {
                *entry = clock;
            }
        }
    }

    /// The slowest registered clock, or `None` when no workers exist.
    pub fn min_clock(&self) -> Option<u64> {
        self.clocks.values().copied().min()
    }

    /// Whether a worker currently *at* `clock` may begin `clock + 1`
    /// under the staleness bound.
    ///
    /// With no registered workers this returns true (nothing to wait on).
    pub fn may_proceed(&self, clock: u64) -> bool {
        match self.min_clock() {
            Some(min) => clock.saturating_sub(min) <= self.slack,
            None => true,
        }
    }

    /// The latest clock all workers have completed — the consistent
    /// snapshot point recovery rolls back to. `None` with no workers.
    pub fn consistent_clock(&self) -> Option<u64> {
        self.min_clock()
    }

    /// Current clock of one worker.
    pub fn clock_of(&self, worker: u32) -> Option<u64> {
        self.clocks.get(&worker).copied()
    }

    /// Number of registered workers.
    pub fn worker_count(&self) -> usize {
        self.clocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bsp_blocks_until_all_advance() {
        let mut t = ClockTable::new(0);
        t.register(0);
        t.register(1);
        assert!(t.may_proceed(0));
        t.advance(0, 1);
        // Worker 0 at clock 1 must wait for worker 1 (still at 0).
        assert!(!t.may_proceed(1));
        t.advance(1, 1);
        assert!(t.may_proceed(1));
    }

    #[test]
    fn slack_allows_bounded_lead() {
        let mut t = ClockTable::new(2);
        t.register(0);
        t.register(1);
        t.advance(0, 2);
        assert!(t.may_proceed(2)); // Lead of 2 ≤ slack.
        t.advance(0, 3);
        assert!(!t.may_proceed(3)); // Lead of 3 > slack.
    }

    #[test]
    fn clocks_never_move_backwards() {
        let mut t = ClockTable::new(0);
        t.register(0);
        t.advance(0, 5);
        t.advance(0, 3);
        assert_eq!(t.clock_of(0), Some(5));
    }

    #[test]
    fn deregister_unblocks_stragglers_waiters() {
        let mut t = ClockTable::new(0);
        t.register(0);
        t.register(1);
        t.advance(0, 4);
        assert!(!t.may_proceed(4));
        // Worker 1 is evicted; worker 0 may proceed.
        t.deregister(1);
        assert!(t.may_proceed(4));
        assert_eq!(t.consistent_clock(), Some(4));
    }

    #[test]
    fn register_at_does_not_regress_consistent_clock() {
        let mut t = ClockTable::new(1);
        t.register(0);
        t.register(1);
        t.advance(0, 7);
        t.advance(1, 7);
        t.deregister(1); // evicted
        assert_eq!(t.consistent_clock(), Some(7));
        // `register` would pin the rejoiner at 0 and drag the rollback
        // target back to the start of the job:
        let mut naive = t.clone();
        naive.register(2);
        assert_eq!(naive.consistent_clock(), Some(0));
        // `register_at` seeds it with the current consistent clock:
        t.register_at(2, 7);
        assert_eq!(t.consistent_clock(), Some(7));
        // Re-registering an existing worker never moves it backwards.
        t.register_at(0, 3);
        assert_eq!(t.clock_of(0), Some(7));
        t.register_at(0, 9);
        assert_eq!(t.clock_of(0), Some(9));
    }

    #[test]
    fn empty_table_never_blocks() {
        let t = ClockTable::new(0);
        assert!(t.may_proceed(100));
        assert_eq!(t.consistent_clock(), None);
        assert_eq!(t.min_clock(), None);
    }

    proptest! {
        #[test]
        fn consistent_clock_is_min(clocks in proptest::collection::vec(0u64..50, 1..8)) {
            let mut t = ClockTable::new(1);
            for (i, c) in clocks.iter().enumerate() {
                t.register(i as u32);
                t.advance(i as u32, *c);
            }
            prop_assert_eq!(t.consistent_clock(), clocks.iter().copied().min());
            prop_assert_eq!(t.worker_count(), clocks.len());
        }

        #[test]
        fn may_proceed_monotone_in_slack(lead in 0u64..10) {
            let mut lo = ClockTable::new(1);
            let mut hi = ClockTable::new(5);
            for t in [&mut lo, &mut hi] {
                t.register(0);
                t.register(1);
                t.advance(0, lead);
            }
            // Anything admitted under the tight bound is admitted under
            // the loose one.
            if lo.may_proceed(lead) {
                prop_assert!(hi.may_proceed(lead));
            }
        }
    }
}
