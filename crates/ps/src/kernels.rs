//! Explicit-width chunked slice kernels for the dense hot paths.
//!
//! Every routine walks its operands in fixed-width chunks (`LANES`
//! elements) with an index loop whose bound is a compile-time constant,
//! which is the shape LLVM reliably turns into packed SIMD (`f32x8` on
//! AVX2, two `f32x4` ops on NEON/SSE) on stable Rust — no nightly
//! features, no intrinsics, no `unsafe`. The scalar remainder handles
//! the final `len % LANES` elements.
//!
//! Element-wise kernels (`add_assign`, `axpy`, `scale`, `lincomb`)
//! compute bit-identical results to their scalar loops: each output
//! lane depends only on the same input lane, so chunking changes
//! nothing about rounding. Reductions (`dot`, `norm_sq`, `dist_sq`)
//! use `LANES` parallel accumulators folded with a fixed pairwise tree,
//! which *does* reorder the floating-point sum relative to a sequential
//! fold — deterministically, the same way on every run and thread
//! count, so simulation reproducibility is preserved even though the
//! low bits differ from a naive loop.

/// Chunk width for `f32` kernels: 8 lanes = one AVX2 register.
const LANES: usize = 8;

/// `a[i] += b[i]` for all `i`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "length mismatch in add_assign");
    let mut ca = a.chunks_exact_mut(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for i in 0..LANES {
            xa[i] += xb[i];
        }
    }
    for (x, y) in ca.into_remainder().iter_mut().zip(cb.remainder()) {
        *x += y;
    }
}

/// `a[i] += s * b[i]` for all `i`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(a: &mut [f32], s: f32, b: &[f32]) {
    assert_eq!(a.len(), b.len(), "length mismatch in axpy");
    let mut ca = a.chunks_exact_mut(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for i in 0..LANES {
            xa[i] += s * xb[i];
        }
    }
    for (x, y) in ca.into_remainder().iter_mut().zip(cb.remainder()) {
        *x += s * y;
    }
}

/// `a[i] *= s` for all `i`.
pub fn scale(a: &mut [f32], s: f32) {
    let mut ca = a.chunks_exact_mut(LANES);
    for xa in ca.by_ref() {
        for x in xa.iter_mut() {
            *x *= s;
        }
    }
    for x in ca.into_remainder() {
        *x *= s;
    }
}

/// The fused linear combination `out[i] = s * x[i] + t * y[i]`,
/// returning a fresh vector — one pass where `clone` + `scale` + `axpy`
/// would take three.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn lincomb(s: f32, x: &[f32], t: f32, y: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), y.len(), "length mismatch in lincomb");
    let mut out = vec![0.0f32; x.len()];
    {
        let mut co = out.chunks_exact_mut(LANES);
        let mut cx = x.chunks_exact(LANES);
        let mut cy = y.chunks_exact(LANES);
        for ((xo, xx), xy) in co.by_ref().zip(cx.by_ref()).zip(cy.by_ref()) {
            for i in 0..LANES {
                xo[i] = s * xx[i] + t * xy[i];
            }
        }
        for ((o, xv), yv) in co
            .into_remainder()
            .iter_mut()
            .zip(cx.remainder())
            .zip(cy.remainder())
        {
            *o = s * xv + t * yv;
        }
    }
    out
}

/// Folds `LANES` partial accumulators with a fixed pairwise tree so the
/// reduction order is deterministic and independent of slice length.
#[inline]
fn reduce(acc: [f32; LANES]) -> f32 {
    let p = [
        acc[0] + acc[4],
        acc[1] + acc[5],
        acc[2] + acc[6],
        acc[3] + acc[7],
    ];
    (p[0] + p[2]) + (p[1] + p[3])
}

/// The dot product `Σ a[i] * b[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch in dot");
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for i in 0..LANES {
            acc[i] += xa[i] * xb[i];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    reduce(acc) + tail
}

/// The squared L2 norm `Σ a[i]²`.
pub fn norm_sq(a: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    for xa in ca.by_ref() {
        for i in 0..LANES {
            acc[i] += xa[i] * xa[i];
        }
    }
    let mut tail = 0.0f32;
    for x in ca.remainder() {
        tail += x * x;
    }
    reduce(acc) + tail
}

/// The squared Euclidean distance `Σ (a[i] - b[i])²`, accumulated in
/// `f64` (k-means sums many small squares; `f32` accumulation loses
/// digits at paper-scale dimensions).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dist_sq(a: &[f32], b: &[f32]) -> f64 {
    const DLANES: usize = 4;
    assert_eq!(a.len(), b.len(), "length mismatch in dist_sq");
    let mut acc = [0.0f64; DLANES];
    let mut ca = a.chunks_exact(DLANES);
    let mut cb = b.chunks_exact(DLANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for i in 0..DLANES {
            let d = f64::from(xa[i]) - f64::from(xb[i]);
            acc[i] += d * d;
        }
    }
    let mut tail = 0.0f64;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = f64::from(*x) - f64::from(*y);
        tail += d * d;
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn slice_strategy(max: usize) -> impl Strategy<Value = Vec<f32>> {
        proptest::collection::vec(-100.0f32..100.0, 0..max)
    }

    #[test]
    fn elementwise_kernels_match_scalar_loops_exactly() {
        // 19 elements: two full chunks plus a 3-element remainder.
        let a0: Vec<f32> = (0..19).map(|i| i as f32 * 0.37 - 3.0).collect();
        let b: Vec<f32> = (0..19).map(|i| 1.0 - i as f32 * 0.21).collect();

        let mut a = a0.clone();
        add_assign(&mut a, &b);
        let expect: Vec<f32> = a0.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(a, expect, "add_assign must be bit-identical to scalar");

        let mut a = a0.clone();
        axpy(&mut a, 2.5, &b);
        let expect: Vec<f32> = a0.iter().zip(&b).map(|(x, y)| x + 2.5 * y).collect();
        assert_eq!(a, expect, "axpy must be bit-identical to scalar");

        let mut a = a0.clone();
        scale(&mut a, -1.5);
        let expect: Vec<f32> = a0.iter().map(|x| x * -1.5).collect();
        assert_eq!(a, expect, "scale must be bit-identical to scalar");

        let out = lincomb(0.5, &a0, -2.0, &b);
        let expect: Vec<f32> = a0.iter().zip(&b).map(|(x, y)| 0.5 * x + -2.0 * y).collect();
        assert_eq!(out, expect, "lincomb must be bit-identical to scalar");
    }

    #[test]
    fn reductions_are_close_to_sequential() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32).cos()).collect();
        let seq_dot: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - seq_dot).abs() <= 1e-3 * seq_dot.abs().max(1.0));
        let seq_norm: f32 = a.iter().map(|x| x * x).sum();
        assert!((norm_sq(&a) - seq_norm).abs() <= 1e-3 * seq_norm.max(1.0));
        let seq_dist: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| {
                let d = f64::from(*x) - f64::from(*y);
                d * d
            })
            .sum();
        assert!((dist_sq(&a, &b) - seq_dist).abs() <= 1e-9 * seq_dist.max(1.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_length_mismatch() {
        let _ = dot(&[1.0, 2.0], &[1.0]);
    }

    proptest! {
        #[test]
        fn dot_is_deterministic_and_length_safe(a in slice_strategy(40)) {
            let b: Vec<f32> = a.iter().map(|x| x * 0.5 + 1.0).collect();
            prop_assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
            prop_assert_eq!(norm_sq(&a).to_bits(), norm_sq(&a).to_bits());
        }

        #[test]
        fn add_assign_matches_scalar(a in slice_strategy(40)) {
            let b: Vec<f32> = a.iter().map(|x| 1.0 - x).collect();
            let mut chunked = a.clone();
            add_assign(&mut chunked, &b);
            let scalar: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            prop_assert_eq!(chunked, scalar);
        }

        #[test]
        fn dist_sq_is_nonnegative_and_symmetric(a in slice_strategy(40)) {
            let b: Vec<f32> = a.iter().map(|x| x * -0.3).collect();
            let d = dist_sq(&a, &b);
            prop_assert!(d >= 0.0);
            prop_assert_eq!(d.to_bits(), dist_sq(&b, &a).to_bits());
        }
    }
}
