//! Compressed sorted key sets for batched read requests.
//!
//! A worker's per-owner read set is the union of a few partitions'
//! keys, and partitions are arithmetic progressions (`key % count`
//! layout), so the sorted union almost always collapses into a handful
//! of strided runs — `(start, stride, count)` triples — instead of one
//! `ParamKey` per entry. A [`KeySet`] stores exactly those runs, built
//! greedily from a sorted key list, turning an O(keys) message payload
//! into an O(runs) one while iterating back the identical key sequence.
//!
//! Wire accounting is **logical**: a `KeySet` reports the bytes the
//! equivalent per-key list would ship (`len × 8`), so switching the
//! read path to ranged requests cannot shift network-volume counters.

use serde::{Deserialize, Serialize};

use crate::partition::ParamKey;

/// One arithmetic run of keys: `start, start+stride, …` (`count` keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct KeyRun {
    start: u64,
    stride: u64,
    count: u64,
}

impl KeyRun {
    /// The last key in the run.
    fn last(&self) -> u64 {
        self.start + self.stride * (self.count - 1)
    }
}

/// A compressed, strictly increasing set of parameter keys.
///
/// # Examples
///
/// ```
/// use proteus_ps::{KeySet, ParamKey};
///
/// // Keys ≡ 1 (mod 4): one strided run, regardless of how many keys.
/// let keys: Vec<ParamKey> = (0..100).map(|i| ParamKey(1 + 4 * i)).collect();
/// let set = KeySet::from_sorted(&keys);
/// assert_eq!(set.len(), 100);
/// assert_eq!(set.run_count(), 1);
/// assert!(set.iter().eq(keys.iter().copied()));
/// assert_eq!(set.wire_bytes(), 100 * 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KeySet {
    runs: Vec<KeyRun>,
    len: usize,
}

impl KeySet {
    /// The empty key set.
    pub fn new() -> Self {
        KeySet::default()
    }

    /// Compresses a sorted, duplicate-free key list into strided runs.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is not strictly increasing — callers sort and
    /// dedup before grouping keys by owner, so an unsorted list here is
    /// a protocol bug, not an input condition.
    pub fn from_sorted(keys: &[ParamKey]) -> Self {
        let mut runs: Vec<KeyRun> = Vec::new();
        for &ParamKey(k) in keys {
            match runs.last_mut() {
                Some(run) if run.count == 1 => {
                    assert!(k > run.start, "KeySet::from_sorted requires sorted keys");
                    run.stride = k - run.start;
                    run.count = 2;
                }
                Some(run) => {
                    let last = run.last();
                    assert!(k > last, "KeySet::from_sorted requires sorted keys");
                    if k - last == run.stride {
                        run.count += 1;
                    } else {
                        runs.push(KeyRun {
                            start: k,
                            stride: 0,
                            count: 1,
                        });
                    }
                }
                None => runs.push(KeyRun {
                    start: k,
                    stride: 0,
                    count: 1,
                }),
            }
        }
        KeySet {
            runs,
            len: keys.len(),
        }
    }

    /// Number of keys in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of compressed runs (diagnostics; `run_count ≪ len` is the
    /// point of the representation).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Iterates the keys in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = ParamKey> + '_ {
        self.runs
            .iter()
            .flat_map(|run| (0..run.count).map(move |i| ParamKey(run.start + run.stride * i)))
    }

    /// Materializes the sorted key list.
    pub fn to_vec(&self) -> Vec<ParamKey> {
        self.iter().collect()
    }

    /// Logical wire size: the bytes of the *equivalent per-key list*
    /// (8 bytes per key), independent of how well the runs compress.
    /// Keeps network-volume accounting identical between the batched
    /// and per-key read paths.
    pub fn wire_bytes(&self) -> usize {
        self.len * std::mem::size_of::<u64>()
    }
}

impl From<&[ParamKey]> for KeySet {
    fn from(keys: &[ParamKey]) -> Self {
        KeySet::from_sorted(keys)
    }
}

impl FromIterator<ParamKey> for KeySet {
    /// Collects from an iterator that must already yield sorted,
    /// duplicate-free keys (see [`KeySet::from_sorted`]).
    fn from_iter<I: IntoIterator<Item = ParamKey>>(iter: I) -> Self {
        let keys: Vec<ParamKey> = iter.into_iter().collect();
        KeySet::from_sorted(&keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn keys(xs: &[u64]) -> Vec<ParamKey> {
        xs.iter().copied().map(ParamKey).collect()
    }

    #[test]
    fn empty_set_is_empty() {
        let s = KeySet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.run_count(), 0);
        assert_eq!(s.wire_bytes(), 0);
        assert!(s.iter().next().is_none());
    }

    #[test]
    fn arithmetic_progression_collapses_to_one_run() {
        let ks = keys(&[3, 7, 11, 15, 19]);
        let s = KeySet::from_sorted(&ks);
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.to_vec(), ks);
    }

    #[test]
    fn union_of_two_partitions_stays_compact() {
        // Partitions 1 and 3 of an 8-way layout: keys ≡ 1 or 3 (mod 8).
        let mut ks: Vec<u64> = Vec::new();
        for base in 0..50u64 {
            ks.push(base * 8 + 1);
            ks.push(base * 8 + 3);
        }
        ks.sort_unstable();
        let ks = keys(&ks);
        let s = KeySet::from_sorted(&ks);
        // Alternating gaps 2,6,2,6… never collapse to one run, but the
        // run count must stay far below the key count.
        assert!(
            s.run_count() <= ks.len() / 2 + 1,
            "expected compression, got {} runs for {} keys",
            s.run_count(),
            ks.len()
        );
        assert_eq!(s.to_vec(), ks);
    }

    #[test]
    fn singletons_and_irregular_gaps_round_trip() {
        let ks = keys(&[0, 1, 5, 6, 7, 100]);
        let s = KeySet::from_sorted(&ks);
        assert_eq!(s.to_vec(), ks);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn wire_bytes_is_per_key_regardless_of_compression() {
        let compact = KeySet::from_sorted(&keys(&[0, 4, 8, 12]));
        let ragged = KeySet::from_sorted(&keys(&[0, 1, 9, 12]));
        assert_eq!(compact.wire_bytes(), 32);
        assert_eq!(ragged.wire_bytes(), 32);
    }

    #[test]
    #[should_panic(expected = "sorted keys")]
    fn unsorted_input_is_rejected() {
        let _ = KeySet::from_sorted(&keys(&[5, 3]));
    }

    proptest! {
        #[test]
        fn round_trips_any_sorted_key_list(
            raw in proptest::collection::vec(0u64..10_000, 0..200)
        ) {
            let mut raw = raw;
            raw.sort_unstable();
            raw.dedup();
            let ks: Vec<ParamKey> = raw.into_iter().map(ParamKey).collect();
            let s = KeySet::from_sorted(&ks);
            prop_assert_eq!(s.to_vec(), ks.clone());
            prop_assert_eq!(s.len(), ks.len());
            prop_assert_eq!(s.wire_bytes(), ks.len() * 8);
        }

        #[test]
        fn strided_unions_compress_well(
            nparts in 2u64..16,
            owned_raw in proptest::collection::vec(0u64..16, 1..4),
            rows in 10u64..200
        ) {
            let mut owned = owned_raw;
            owned.sort_unstable();
            owned.dedup();
            // Keys of a few partitions under modulo layout.
            let mut ks: Vec<u64> = Vec::new();
            for slot in 0..rows {
                for &p in owned.iter().filter(|&&p| p < nparts) {
                    ks.push(slot * nparts + p);
                }
            }
            ks.sort_unstable();
            ks.dedup();
            // `owned` may fall entirely outside `0..nparts`; an empty key
            // list is a valid (trivial) case.
            if !ks.is_empty() {
                let parsed: Vec<ParamKey> = ks.iter().copied().map(ParamKey).collect();
                let s = KeySet::from_sorted(&parsed);
                prop_assert_eq!(s.to_vec(), parsed.clone());
                // Periodic pattern: at most one run per (partition, period
                // boundary) pair, far below the key count for long lists.
                prop_assert!(s.run_count() <= 2 * owned.len() + 2 || s.run_count() < parsed.len());
            }
        }
    }
}
