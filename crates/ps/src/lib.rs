//! Parameter-server building blocks.
//!
//! Modern ML training frameworks share model state through a *parameter
//! server*: a specialized key-value store sharded across machines, with a
//! worker-side library that caches values and write-back buffers updates
//! (Sec. 2.1 of the Proteus paper). Values must be serializable and carry a
//! commutative, associative aggregation function so updates from different
//! workers can be applied in any order — for the paper's applications the
//! values are vectors and the aggregation is component-wise addition.
//!
//! This crate provides those building blocks free of any networking:
//!
//! * [`PsValue`] / [`DenseVec`] — the value contract and the dense-vector
//!   instance every bundled application uses;
//! * [`PartitionMap`] — the fixed-`N`-partition key layout AgileML uses so
//!   elasticity re-assigns *partitions* instead of re-sharding keys;
//! * [`ShardStore`] — one server shard's state, with partition-granular
//!   export/import for migration and backup;
//! * [`ClockTable`] — Stale-Synchronous-Parallel progress tracking;
//! * [`cache::WorkerCache`] — the worker-side cache with write-back
//!   update buffering;
//! * [`protocol`] — the request/response message vocabulary exchanged
//!   between workers and servers (transport-agnostic);
//! * [`Values`] / [`KeySet`] — the zero-copy shared payload buffer and
//!   the compressed key-range set the batched data plane ships;
//! * [`kernels`] — explicit-width chunked slice kernels (the
//!   autovectorized hot loops behind [`DenseVec`] and the ML apps);
//! * [`snapshot`] — the durable, bit-exact checkpoint encoding of a
//!   full parameter map (used by session-level restart-from-checkpoint).
//!
//! The elastic tiering logic (ActivePS/BackupPS, stages, recovery) lives
//! one layer up in `proteus-agileml`; everything here is deliberately
//! mechanism-only so it can be property-tested in isolation.

// Storage primitives return typed errors, never panic; any retained
// expect must document a real invariant at its use site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod clock;
pub mod kernels;
pub mod keyset;
pub mod partition;
pub mod protocol;
pub mod shard;
pub mod snapshot;
pub mod sparse;
pub mod value;
pub mod values;

pub use cache::WorkerCache;
pub use clock::ClockTable;
pub use keyset::KeySet;
pub use partition::{ParamKey, PartitionId, PartitionMap};
pub use protocol::{PsRequest, PsResponse, UpdateBatch};
pub use shard::ShardStore;
pub use snapshot::{decode_model, encode_model, SnapshotError};
pub use sparse::SparseVec;
pub use value::{DenseVec, PsValue};
pub use values::Values;
