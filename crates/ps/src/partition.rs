//! Fixed-count key partitioning.
//!
//! AgileML divides the parameter state into `N` partitions at start-up,
//! where `N` is the maximum number of ActivePSs that can ever exist
//! (Sec. 3.3: half the maximum resource footprint works well). Elasticity
//! then re-assigns whole *partitions* between servers instead of
//! re-sharding keys, which is what makes bulk addition and eviction cheap.

use serde::{Deserialize, Serialize};

/// A parameter key (e.g. a row index of the factor matrix `L`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParamKey(pub u64);

/// A partition of the key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PartitionId(pub u32);

/// The immutable key→partition layout fixed at job start.
///
/// Keys map to partitions by modulo, which balances any key distribution
/// whose low bits vary (all bundled apps use dense integer key ranges).
///
/// # Examples
///
/// ```
/// use proteus_ps::{ParamKey, PartitionMap};
///
/// let map = PartitionMap::new(8).unwrap();
/// assert_eq!(map.partition_of(ParamKey(13)).0, 5);
/// assert_eq!(map.partitions().count(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionMap {
    count: u32,
}

impl PartitionMap {
    /// Creates a layout with `count` partitions; `None` if `count` is 0.
    pub fn new(count: u32) -> Option<Self> {
        if count == 0 {
            None
        } else {
            Some(PartitionMap { count })
        }
    }

    /// Number of partitions.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The partition owning `key`.
    pub fn partition_of(&self, key: ParamKey) -> PartitionId {
        PartitionId((key.0 % u64::from(self.count)) as u32)
    }

    /// Iterates over every partition id.
    pub fn partitions(&self) -> impl Iterator<Item = PartitionId> {
        (0..self.count).map(PartitionId)
    }

    /// Splits the partition set as evenly as possible across `servers`
    /// slots, returning for each slot the list of partitions it owns.
    ///
    /// Returns `None` when `servers` is zero. Slot `i` receives partitions
    /// `{p : p ≡ i (mod servers)}` so that growing or shrinking the server
    /// count moves a minimal, predictable subset.
    pub fn assign_round_robin(&self, servers: u32) -> Option<Vec<Vec<PartitionId>>> {
        if servers == 0 {
            return None;
        }
        let mut out = vec![Vec::new(); servers as usize];
        for p in self.partitions() {
            out[(p.0 % servers) as usize].push(p);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_partitions_rejected() {
        assert!(PartitionMap::new(0).is_none());
    }

    #[test]
    fn round_robin_assignment_covers_all_partitions() {
        let map = PartitionMap::new(10).unwrap();
        let assign = map.assign_round_robin(3).unwrap();
        let mut seen: Vec<u32> = assign.iter().flatten().map(|p| p.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        // Balance: sizes differ by at most one.
        let sizes: Vec<usize> = assign.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn round_robin_with_zero_servers_is_none() {
        assert!(PartitionMap::new(4)
            .unwrap()
            .assign_round_robin(0)
            .is_none());
    }

    proptest! {
        #[test]
        fn every_key_maps_to_valid_partition(count in 1u32..64, key in any::<u64>()) {
            let map = PartitionMap::new(count).unwrap();
            let p = map.partition_of(ParamKey(key));
            prop_assert!(p.0 < count);
        }

        #[test]
        fn dense_keys_balance_across_partitions(count in 1u32..16) {
            let map = PartitionMap::new(count).unwrap();
            let mut loads = vec![0usize; count as usize];
            for k in 0..1000u64 {
                loads[map.partition_of(ParamKey(k)).0 as usize] += 1;
            }
            let max = *loads.iter().max().unwrap();
            let min = *loads.iter().min().unwrap();
            prop_assert!(max - min <= 1, "dense keys should balance: {loads:?}");
        }
    }
}
