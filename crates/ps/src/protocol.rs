//! Transport-agnostic request/response vocabulary between workers and
//! parameter-server shards.
//!
//! AgileML embeds these in its own message enum and routes them over
//! `proteus-simnet`; keeping the vocabulary here lets protocol-level
//! invariants be tested without threads.
//!
//! The data plane is batched and zero-copy: reads ship a compressed
//! [`KeySet`] instead of one key per entry, and update payloads are
//! [`Values`] buffers shared by reference across message clones (fault
//! duplication, delayed redelivery). Wire accounting stays *logical* —
//! a batch reports the bytes the equivalent per-key traffic would ship,
//! so network-volume counters do not shift when batching lands.

use serde::{Deserialize, Serialize};

use crate::keyset::KeySet;
use crate::partition::PartitionId;
use crate::value::PsValue;
use crate::values::Values;

/// A batch of coalesced updates for one partition, stamped with the
/// sending worker's clock. The payload is a shared [`Values`] buffer:
/// cloning the batch (every simnet hop does) bumps a reference count
/// instead of copying every `(key, delta)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateBatch<V> {
    /// Destination partition.
    pub partition: PartitionId,
    /// The sender's clock when the batch was flushed.
    pub clock: u64,
    /// Coalesced `(key, delta)` pairs, sorted by key, shared by
    /// reference across clones of this batch.
    pub updates: Values<V>,
}

impl<V: PsValue> UpdateBatch<V> {
    /// Total wire size of the batch's values in bytes (plus one key word
    /// per entry), for network accounting. Identical to what the same
    /// updates would report shipped one key at a time — batching and
    /// buffer sharing never change the logical volume.
    pub fn wire_bytes(&self) -> usize {
        self.updates.wire_bytes()
    }
}

/// Requests a worker (or peer server) sends to a parameter-server shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PsRequest<V> {
    /// Read a set of keys (compressed; contiguous/strided ranges ship as
    /// runs).
    Read {
        /// Keys to fetch.
        keys: KeySet,
        /// The reader's clock (for staleness accounting).
        clock: u64,
    },
    /// Apply a batch of updates.
    Update(UpdateBatch<V>),
    /// Advance the sender's clock (end of an iteration).
    Clock {
        /// Logical worker id.
        worker: u32,
        /// The clock just completed.
        clock: u64,
    },
    /// Request a full image of one partition (migration / recovery).
    FetchPartition(PartitionId),
}

/// Responses a shard sends back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PsResponse<V> {
    /// Values for a `Read` (missing keys are omitted).
    Values(Values<V>),
    /// Acknowledges an update batch at the shard's current clock view.
    UpdateAck {
        /// The shard's consistent clock after applying the batch.
        consistent_clock: Option<u64>,
    },
    /// A full partition image for `FetchPartition`.
    PartitionImage {
        /// The partition exported.
        partition: PartitionId,
        /// Its `(key, value)` pairs, sorted by key.
        image: Values<V>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::ParamKey;
    use crate::value::DenseVec;

    #[test]
    fn wire_bytes_counts_values_and_keys() {
        let batch = UpdateBatch {
            partition: PartitionId(0),
            clock: 3,
            updates: vec![
                (ParamKey(1), DenseVec::zeros(10)),
                (ParamKey(2), DenseVec::zeros(10)),
            ]
            .into(),
        };
        // 2 × (10 × 4 bytes + 8-byte key).
        assert_eq!(batch.wire_bytes(), 2 * (40 + 8));
    }

    #[test]
    fn batched_wire_bytes_equal_per_key_sum() {
        // Satellite invariant: the batch reports exactly the volume the
        // same updates would ship one pair at a time.
        let pairs: Vec<(ParamKey, DenseVec)> = (0..16u64)
            .map(|k| (ParamKey(k), DenseVec::zeros((k % 5 + 1) as usize)))
            .collect();
        let per_key: usize = pairs
            .iter()
            .map(|(_, v)| v.wire_bytes() + std::mem::size_of::<u64>())
            .sum();
        let batch = UpdateBatch {
            partition: PartitionId(0),
            clock: 0,
            updates: pairs.into(),
        };
        assert_eq!(batch.wire_bytes(), per_key);
    }

    #[test]
    fn cloned_batches_share_their_payload() {
        let batch: UpdateBatch<DenseVec> = UpdateBatch {
            partition: PartitionId(1),
            clock: 7,
            updates: vec![(ParamKey(1), DenseVec::zeros(64))].into(),
        };
        let dup = batch.clone();
        assert!(
            batch.updates.shares_buffer(&dup.updates),
            "clone must be zero-copy"
        );
        assert_eq!(dup.wire_bytes(), batch.wire_bytes());
    }

    #[test]
    fn protocol_types_are_cloneable_and_comparable() {
        let req: PsRequest<DenseVec> = PsRequest::Clock {
            worker: 1,
            clock: 2,
        };
        assert_eq!(req.clone(), req);
        let resp: PsResponse<DenseVec> = PsResponse::UpdateAck {
            consistent_clock: Some(5),
        };
        assert_eq!(resp.clone(), resp);
    }

    #[test]
    fn read_requests_carry_compressed_key_sets() {
        let keys: Vec<ParamKey> = (0..64).map(|i| ParamKey(2 + 8 * i)).collect();
        let req: PsRequest<DenseVec> = PsRequest::Read {
            keys: KeySet::from_sorted(&keys),
            clock: 0,
        };
        if let PsRequest::Read { keys: set, .. } = &req {
            assert_eq!(set.len(), 64);
            assert_eq!(set.run_count(), 1, "strided keys compress to one run");
            assert_eq!(set.wire_bytes(), 64 * 8, "logical accounting is per key");
        } else {
            unreachable!("constructed as Read");
        }
    }
}
