//! Transport-agnostic request/response vocabulary between workers and
//! parameter-server shards.
//!
//! AgileML embeds these in its own message enum and routes them over
//! `proteus-simnet`; keeping the vocabulary here lets protocol-level
//! invariants be tested without threads.

use serde::{Deserialize, Serialize};

use crate::partition::{ParamKey, PartitionId};
use crate::value::PsValue;

/// A batch of coalesced updates for one partition, stamped with the
/// sending worker's clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateBatch<V> {
    /// Destination partition.
    pub partition: PartitionId,
    /// The sender's clock when the batch was flushed.
    pub clock: u64,
    /// Coalesced `(key, delta)` pairs, sorted by key.
    pub updates: Vec<(ParamKey, V)>,
}

impl<V: PsValue> UpdateBatch<V> {
    /// Total wire size of the batch's values in bytes (plus one key word
    /// per entry), for network accounting.
    pub fn wire_bytes(&self) -> usize {
        self.updates
            .iter()
            .map(|(_, v)| v.wire_bytes() + std::mem::size_of::<u64>())
            .sum()
    }
}

/// Requests a worker (or peer server) sends to a parameter-server shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PsRequest<V> {
    /// Read a set of keys.
    Read {
        /// Keys to fetch.
        keys: Vec<ParamKey>,
        /// The reader's clock (for staleness accounting).
        clock: u64,
    },
    /// Apply a batch of updates.
    Update(UpdateBatch<V>),
    /// Advance the sender's clock (end of an iteration).
    Clock {
        /// Logical worker id.
        worker: u32,
        /// The clock just completed.
        clock: u64,
    },
    /// Request a full image of one partition (migration / recovery).
    FetchPartition(PartitionId),
}

/// Responses a shard sends back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PsResponse<V> {
    /// Values for a `Read` (missing keys are omitted).
    Values(Vec<(ParamKey, V)>),
    /// Acknowledges an update batch at the shard's current clock view.
    UpdateAck {
        /// The shard's consistent clock after applying the batch.
        consistent_clock: Option<u64>,
    },
    /// A full partition image for `FetchPartition`.
    PartitionImage {
        /// The partition exported.
        partition: PartitionId,
        /// Its `(key, value)` pairs, sorted by key.
        image: Vec<(ParamKey, V)>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DenseVec;

    #[test]
    fn wire_bytes_counts_values_and_keys() {
        let batch = UpdateBatch {
            partition: PartitionId(0),
            clock: 3,
            updates: vec![
                (ParamKey(1), DenseVec::zeros(10)),
                (ParamKey(2), DenseVec::zeros(10)),
            ],
        };
        // 2 × (10 × 4 bytes + 8-byte key).
        assert_eq!(batch.wire_bytes(), 2 * (40 + 8));
    }

    #[test]
    fn protocol_types_are_cloneable_and_comparable() {
        let req: PsRequest<DenseVec> = PsRequest::Clock {
            worker: 1,
            clock: 2,
        };
        assert_eq!(req.clone(), req);
        let resp: PsResponse<DenseVec> = PsResponse::UpdateAck {
            consistent_clock: Some(5),
        };
        assert_eq!(resp.clone(), resp);
    }
}
