//! One server shard's parameter state.
//!
//! A [`ShardStore`] holds the key-value pairs for the partitions assigned
//! to one server process (a `ParamServ`, `ActivePS`, or `BackupPS` in
//! AgileML terms). Besides reads and commutative updates it supports
//! partition-granular export/import — the primitive behind partition
//! migration, active→backup streaming, and recovery — and *delta
//! tracking*: the aggregate of updates applied since the last push to the
//! backup, which is what lets an ActivePS roll back to a state consistent
//! with its BackupPS after a partial failure (Sec. 3.3).

use std::collections::HashMap;

use crate::partition::{ParamKey, PartitionId, PartitionMap};
use crate::value::PsValue;

/// Parameter state held by one server shard.
#[derive(Debug, Clone)]
pub struct ShardStore<V> {
    layout: PartitionMap,
    /// Live parameter values.
    values: HashMap<ParamKey, V>,
    /// Aggregate of deltas applied since the last `take_dirty` — keyed the
    /// same way, merged commutatively.
    dirty: HashMap<ParamKey, V>,
}

impl<V: PsValue> ShardStore<V> {
    /// Creates an empty shard using the job's partition layout.
    pub fn new(layout: PartitionMap) -> Self {
        ShardStore {
            layout,
            values: HashMap::new(),
            dirty: HashMap::new(),
        }
    }

    /// The partition layout this shard uses.
    pub fn layout(&self) -> PartitionMap {
        self.layout
    }

    /// Installs an initial value for `key`, replacing any existing one and
    /// clearing its dirty delta.
    pub fn install(&mut self, key: ParamKey, value: V) {
        self.values.insert(key, value);
        self.dirty.remove(&key);
    }

    /// Reads the current value of `key`.
    pub fn read(&self, key: ParamKey) -> Option<&V> {
        self.values.get(&key)
    }

    /// Applies a commutative delta to `key` and tracks it in the dirty
    /// aggregate.
    ///
    /// Unknown keys are initialized to the delta (zero plus delta), which
    /// lets workers lazily materialize rows.
    pub fn apply_update(&mut self, key: ParamKey, delta: &V) {
        match self.values.get_mut(&key) {
            Some(v) => v.merge(delta),
            None => {
                self.values.insert(key, delta.clone());
            }
        }
        match self.dirty.get_mut(&key) {
            Some(d) => d.merge(delta),
            None => {
                self.dirty.insert(key, delta.clone());
            }
        }
    }

    /// Number of materialized keys.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the shard holds no keys.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Exports every `(key, value)` belonging to `partition`, sorted by
    /// key for deterministic wire images.
    pub fn export_partition(&self, partition: PartitionId) -> Vec<(ParamKey, V)> {
        let mut out: Vec<(ParamKey, V)> = self
            .values
            .iter()
            .filter(|(k, _)| self.layout.partition_of(**k) == partition)
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Installs an exported partition image, replacing any existing values
    /// for those keys (used on migration targets and during recovery).
    pub fn import_partition(&mut self, image: Vec<(ParamKey, V)>) {
        for (k, v) in image {
            self.install(k, v);
        }
    }

    /// Removes every key belonging to `partition` (after the partition has
    /// migrated elsewhere), returning how many keys were dropped.
    pub fn drop_partition(&mut self, partition: PartitionId) -> usize {
        let doomed: Vec<ParamKey> = self
            .values
            .keys()
            .filter(|k| self.layout.partition_of(**k) == partition)
            .copied()
            .collect();
        for k in &doomed {
            self.values.remove(k);
            self.dirty.remove(k);
        }
        doomed.len()
    }

    /// Takes and clears the dirty aggregate: the coalesced updates applied
    /// since the previous call. This is what an ActivePS streams to its
    /// BackupPS in the background.
    pub fn take_dirty(&mut self) -> Vec<(ParamKey, V)> {
        let mut out: Vec<(ParamKey, V)> = self.dirty.drain().collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Whether any updates are pending since the last `take_dirty`.
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Rolls the shard back to the state it had at the last `take_dirty`
    /// boundary by *subtracting* the pending dirty aggregate.
    ///
    /// This requires the value's merge to have an inverse under the dirty
    /// delta — true for component-wise addition, where subtracting means
    /// merging the negation. The negation is produced by `negate`.
    pub fn rollback_dirty(&mut self, negate: impl Fn(&V) -> V) {
        let pending: Vec<(ParamKey, V)> = self.dirty.drain().collect();
        for (k, d) in pending {
            if let Some(v) = self.values.get_mut(&k) {
                v.merge(&negate(&d));
            }
        }
    }

    /// Every key currently materialized, sorted (test/diagnostic helper).
    pub fn keys(&self) -> Vec<ParamKey> {
        let mut ks: Vec<ParamKey> = self.values.keys().copied().collect();
        ks.sort();
        ks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DenseVec;

    fn store(partitions: u32) -> ShardStore<DenseVec> {
        ShardStore::new(PartitionMap::new(partitions).expect("nonzero"))
    }

    fn dv(xs: &[f32]) -> DenseVec {
        DenseVec::from(xs.to_vec())
    }

    #[test]
    fn updates_merge_and_lazily_materialize() {
        let mut s = store(4);
        s.apply_update(ParamKey(1), &dv(&[1.0, 2.0]));
        s.apply_update(ParamKey(1), &dv(&[0.5, -2.0]));
        assert_eq!(s.read(ParamKey(1)).unwrap().as_slice(), &[1.5, 0.0]);
        assert_eq!(s.len(), 1);
        assert!(s.read(ParamKey(2)).is_none());
    }

    #[test]
    fn install_resets_dirty_state() {
        let mut s = store(4);
        s.apply_update(ParamKey(1), &dv(&[1.0]));
        assert!(s.has_dirty());
        s.install(ParamKey(1), dv(&[9.0]));
        assert!(!s.has_dirty());
        assert_eq!(s.read(ParamKey(1)).unwrap().as_slice(), &[9.0]);
    }

    #[test]
    fn export_import_round_trips_a_partition() {
        let mut src = store(4);
        // Keys 0,4,8 fall in partition 0; key 1 in partition 1.
        for k in [0u64, 4, 8, 1] {
            src.install(ParamKey(k), dv(&[k as f32]));
        }
        let image = src.export_partition(PartitionId(0));
        assert_eq!(image.len(), 3);

        let mut dst = store(4);
        dst.import_partition(image);
        assert_eq!(dst.read(ParamKey(4)).unwrap().as_slice(), &[4.0]);
        assert!(dst.read(ParamKey(1)).is_none());
    }

    #[test]
    fn drop_partition_removes_only_that_partition() {
        let mut s = store(4);
        for k in 0..8u64 {
            s.install(ParamKey(k), dv(&[k as f32]));
        }
        let dropped = s.drop_partition(PartitionId(2));
        assert_eq!(dropped, 2); // Keys 2 and 6.
        assert!(s.read(ParamKey(2)).is_none());
        assert!(s.read(ParamKey(6)).is_none());
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn take_dirty_coalesces_updates() {
        let mut s = store(2);
        s.apply_update(ParamKey(3), &dv(&[1.0]));
        s.apply_update(ParamKey(3), &dv(&[2.0]));
        s.apply_update(ParamKey(4), &dv(&[5.0]));
        let dirty = s.take_dirty();
        assert_eq!(dirty.len(), 2);
        let d3 = dirty.iter().find(|(k, _)| *k == ParamKey(3)).unwrap();
        assert_eq!(d3.1.as_slice(), &[3.0]);
        assert!(!s.has_dirty());
        assert!(s.take_dirty().is_empty());
    }

    #[test]
    fn rollback_dirty_restores_last_pushed_state() {
        let mut s = store(2);
        s.install(ParamKey(1), dv(&[10.0]));
        // Simulate a push boundary.
        let _ = s.take_dirty();
        // Updates since the push.
        s.apply_update(ParamKey(1), &dv(&[2.5]));
        s.apply_update(ParamKey(1), &dv(&[0.5]));
        assert_eq!(s.read(ParamKey(1)).unwrap().as_slice(), &[13.0]);
        // A failure elsewhere forces this shard back to the backup state.
        s.rollback_dirty(|d| {
            let mut n = d.clone();
            n.scale(-1.0);
            n
        });
        assert_eq!(s.read(ParamKey(1)).unwrap().as_slice(), &[10.0]);
        assert!(!s.has_dirty());
    }

    #[test]
    fn exported_images_are_sorted_by_key() {
        let mut s = store(1);
        for k in [9u64, 3, 7, 1] {
            s.install(ParamKey(k), dv(&[0.0]));
        }
        let image = s.export_partition(PartitionId(0));
        let keys: Vec<u64> = image.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![1, 3, 7, 9]);
        assert_eq!(
            s.keys(),
            vec![ParamKey(1), ParamKey(3), ParamKey(7), ParamKey(9)]
        );
    }
}
