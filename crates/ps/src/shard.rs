//! One server shard's parameter state.
//!
//! A [`ShardStore`] holds the key-value pairs for the partitions assigned
//! to one server process (a `ParamServ`, `ActivePS`, or `BackupPS` in
//! AgileML terms). Besides reads and commutative updates it supports
//! partition-granular export/import — the primitive behind partition
//! migration, active→backup streaming, and recovery — and *delta
//! tracking*: the aggregate of updates applied since the last push to the
//! backup, which is what lets an ActivePS roll back to a state consistent
//! with its BackupPS after a partial failure (Sec. 3.3).
//!
//! # Internal layout: one slab per partition
//!
//! Under the modulo key layout (`partition = key % count`) each
//! partition's keys form the arithmetic progression `p, p+count,
//! p+2·count, …`, so `key / count` is a dense slot index within the
//! partition. The store exploits this: instead of one global hash map,
//! it keeps a [`Slab`] per partition — a dense `Vec` indexed by slot
//! (with a hash-map spill for pathologically large keys). Batched
//! updates hit a direct array index instead of two hash probes per key,
//! partition export/drop walk exactly one slab instead of filtering
//! every key in the store, and independent partitions never contend on
//! shared bucket state.

use std::collections::HashMap;

use crate::partition::{ParamKey, PartitionId, PartitionMap};
use crate::value::PsValue;

/// Slots below this index live in the dense vector; larger ones (keys
/// beyond ~4 billion × partition-count, which no bundled app produces)
/// spill to a hash map so arbitrary `u64` keys still work without
/// unbounded allocation.
const DENSE_SLOT_LIMIT: u64 = 1 << 22;

/// Dense-first storage for one partition: a slot-indexed vector with a
/// hash spill for slots past [`DENSE_SLOT_LIMIT`].
#[derive(Debug, Clone)]
struct Slab<V> {
    dense: Vec<Option<V>>,
    /// Entries with `slot >= DENSE_SLOT_LIMIT` only — keeping the two
    /// ranges disjoint means "dense in slot order, then spill sorted"
    /// enumerates all keys in increasing order.
    spill: HashMap<u64, V>,
    live: usize,
}

impl<V> Default for Slab<V> {
    fn default() -> Self {
        Slab {
            dense: Vec::new(),
            spill: HashMap::new(),
            live: 0,
        }
    }
}

impl<V> Slab<V> {
    fn get(&self, slot: u64) -> Option<&V> {
        if slot < DENSE_SLOT_LIMIT {
            self.dense.get(slot as usize).and_then(|o| o.as_ref())
        } else {
            self.spill.get(&slot)
        }
    }

    fn get_mut(&mut self, slot: u64) -> Option<&mut V> {
        if slot < DENSE_SLOT_LIMIT {
            self.dense.get_mut(slot as usize).and_then(|o| o.as_mut())
        } else {
            self.spill.get_mut(&slot)
        }
    }

    fn insert(&mut self, slot: u64, value: V) -> Option<V> {
        let old = if slot < DENSE_SLOT_LIMIT {
            let idx = slot as usize;
            if idx >= self.dense.len() {
                self.dense.resize_with(idx + 1, || None);
            }
            self.dense[idx].replace(value)
        } else {
            self.spill.insert(slot, value)
        };
        if old.is_none() {
            self.live += 1;
        }
        old
    }

    fn remove(&mut self, slot: u64) -> Option<V> {
        let old = if slot < DENSE_SLOT_LIMIT {
            self.dense.get_mut(slot as usize).and_then(|o| o.take())
        } else {
            self.spill.remove(&slot)
        };
        if old.is_some() {
            self.live -= 1;
        }
        old
    }

    fn clear(&mut self) -> usize {
        let n = self.live;
        self.dense.clear();
        self.spill.clear();
        self.live = 0;
        n
    }

    fn len(&self) -> usize {
        self.live
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates `(slot, value)` in increasing slot order.
    fn iter_sorted(&self) -> impl Iterator<Item = (u64, &V)> {
        let mut spill_slots: Vec<u64> = self.spill.keys().copied().collect();
        spill_slots.sort_unstable();
        self.dense
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().map(|v| (i as u64, v)))
            .chain(
                spill_slots
                    .into_iter()
                    .filter_map(move |s| self.spill.get(&s).map(|v| (s, v))),
            )
    }

    /// Drains every entry in increasing slot order.
    fn drain_sorted(&mut self) -> Vec<(u64, V)> {
        let mut out: Vec<(u64, V)> = Vec::with_capacity(self.live);
        for (i, o) in self.dense.iter_mut().enumerate() {
            if let Some(v) = o.take() {
                out.push((i as u64, v));
            }
        }
        let mut spilled: Vec<(u64, V)> = self.spill.drain().collect();
        spilled.sort_unstable_by_key(|(s, _)| *s);
        out.extend(spilled);
        self.dense.clear();
        self.live = 0;
        out
    }
}

/// Parameter state held by one server shard, stored slab-per-partition.
#[derive(Debug, Clone)]
pub struct ShardStore<V> {
    layout: PartitionMap,
    /// Live parameter values, one slab per partition.
    values: Vec<Slab<V>>,
    /// Aggregate of deltas applied since the last `take_dirty` — keyed
    /// the same way, merged commutatively.
    dirty: Vec<Slab<V>>,
}

impl<V: PsValue> ShardStore<V> {
    /// Creates an empty shard using the job's partition layout.
    pub fn new(layout: PartitionMap) -> Self {
        let n = layout.count() as usize;
        let mut values = Vec::with_capacity(n);
        let mut dirty = Vec::with_capacity(n);
        values.resize_with(n, Slab::default);
        dirty.resize_with(n, Slab::default);
        ShardStore {
            layout,
            values,
            dirty,
        }
    }

    /// The partition layout this shard uses.
    pub fn layout(&self) -> PartitionMap {
        self.layout
    }

    /// Splits `key` into its partition index and in-partition slot.
    #[inline]
    fn locate(&self, key: ParamKey) -> (usize, u64) {
        let count = u64::from(self.layout.count());
        ((key.0 % count) as usize, key.0 / count)
    }

    /// Reassembles the key stored at `slot` of partition `p`.
    #[inline]
    fn key_at(&self, p: usize, slot: u64) -> ParamKey {
        ParamKey(slot * u64::from(self.layout.count()) + p as u64)
    }

    /// Installs an initial value for `key`, replacing any existing one and
    /// clearing its dirty delta.
    pub fn install(&mut self, key: ParamKey, value: V) {
        let (p, slot) = self.locate(key);
        self.values[p].insert(slot, value);
        self.dirty[p].remove(slot);
    }

    /// Reads the current value of `key`.
    pub fn read(&self, key: ParamKey) -> Option<&V> {
        let (p, slot) = self.locate(key);
        self.values[p].get(slot)
    }

    /// Applies a commutative delta to `key` and tracks it in the dirty
    /// aggregate.
    ///
    /// Unknown keys are initialized to the delta (zero plus delta), which
    /// lets workers lazily materialize rows.
    pub fn apply_update(&mut self, key: ParamKey, delta: &V) {
        let (p, slot) = self.locate(key);
        match self.values[p].get_mut(slot) {
            Some(v) => v.merge(delta),
            None => {
                self.values[p].insert(slot, delta.clone());
            }
        }
        match self.dirty[p].get_mut(slot) {
            Some(d) => d.merge(delta),
            None => {
                self.dirty[p].insert(slot, delta.clone());
            }
        }
    }

    /// Applies a whole batch of `(key, delta)` pairs in one pass over
    /// the slabs — the batched data plane's entry point. Equivalent to
    /// calling [`ShardStore::apply_update`] per pair (bit-identical
    /// resulting state), without re-resolving partition slabs per key.
    pub fn apply_batch(&mut self, updates: &[(ParamKey, V)]) {
        let count = u64::from(self.layout.count());
        for (key, delta) in updates {
            let p = (key.0 % count) as usize;
            let slot = key.0 / count;
            match self.values[p].get_mut(slot) {
                Some(v) => v.merge(delta),
                None => {
                    self.values[p].insert(slot, delta.clone());
                }
            }
            match self.dirty[p].get_mut(slot) {
                Some(d) => d.merge(delta),
                None => {
                    self.dirty[p].insert(slot, delta.clone());
                }
            }
        }
    }

    /// Number of materialized keys.
    pub fn len(&self) -> usize {
        self.values.iter().map(Slab::len).sum()
    }

    /// Whether the shard holds no keys.
    pub fn is_empty(&self) -> bool {
        self.values.iter().all(Slab::is_empty)
    }

    /// Exports every `(key, value)` belonging to `partition`, sorted by
    /// key for deterministic wire images. Walks exactly one slab.
    pub fn export_partition(&self, partition: PartitionId) -> Vec<(ParamKey, V)> {
        let p = partition.0 as usize;
        match self.values.get(p) {
            Some(slab) => slab
                .iter_sorted()
                .map(|(slot, v)| (self.key_at(p, slot), v.clone()))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Installs an exported partition image, replacing any existing values
    /// for those keys (used on migration targets and during recovery).
    pub fn import_partition<I: IntoIterator<Item = (ParamKey, V)>>(&mut self, image: I) {
        for (k, v) in image {
            self.install(k, v);
        }
    }

    /// Removes every key belonging to `partition` (after the partition has
    /// migrated elsewhere), returning how many keys were dropped. O(slab),
    /// touching no other partition's state.
    pub fn drop_partition(&mut self, partition: PartitionId) -> usize {
        let p = partition.0 as usize;
        let dropped = match self.values.get_mut(p) {
            Some(slab) => slab.clear(),
            None => 0,
        };
        if let Some(slab) = self.dirty.get_mut(p) {
            slab.clear();
        }
        dropped
    }

    /// Takes and clears the dirty aggregate: the coalesced updates applied
    /// since the previous call, sorted by key. This is what an ActivePS
    /// streams to its BackupPS in the background.
    pub fn take_dirty(&mut self) -> Vec<(ParamKey, V)> {
        let mut out: Vec<(ParamKey, V)> = Vec::new();
        for p in 0..self.dirty.len() {
            for (slot, v) in self.dirty[p].drain_sorted() {
                out.push((self.key_at(p, slot), v));
            }
        }
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Takes and clears the dirty aggregate of one partition, sorted by
    /// key — the per-partition fast path for backup pushes (no global
    /// drain-and-regroup).
    pub fn take_dirty_partition(&mut self, partition: PartitionId) -> Vec<(ParamKey, V)> {
        let p = partition.0 as usize;
        match self.dirty.get_mut(p) {
            Some(slab) => slab
                .drain_sorted()
                .into_iter()
                .map(|(slot, v)| (self.key_at(p, slot), v))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Partitions with pending dirty deltas, sorted.
    pub fn dirty_partitions(&self) -> Vec<PartitionId> {
        self.dirty
            .iter()
            .enumerate()
            .filter(|(_, slab)| !slab.is_empty())
            .map(|(p, _)| PartitionId(p as u32))
            .collect()
    }

    /// Whether any updates are pending since the last `take_dirty`.
    pub fn has_dirty(&self) -> bool {
        self.dirty.iter().any(|slab| !slab.is_empty())
    }

    /// Rolls the shard back to the state it had at the last `take_dirty`
    /// boundary by *subtracting* the pending dirty aggregate.
    ///
    /// This requires the value's merge to have an inverse under the dirty
    /// delta — true for component-wise addition, where subtracting means
    /// merging the negation. The negation is produced by `negate`.
    pub fn rollback_dirty(&mut self, negate: impl Fn(&V) -> V) {
        for p in 0..self.dirty.len() {
            for (slot, d) in self.dirty[p].drain_sorted() {
                if let Some(v) = self.values[p].get_mut(slot) {
                    v.merge(&negate(&d));
                }
            }
        }
    }

    /// Every key currently materialized, sorted (test/diagnostic helper).
    pub fn keys(&self) -> Vec<ParamKey> {
        let mut ks: Vec<ParamKey> = (0..self.values.len())
            .flat_map(|p| {
                self.values[p]
                    .iter_sorted()
                    .map(move |(slot, _)| self.key_at(p, slot))
            })
            .collect();
        ks.sort();
        ks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DenseVec;

    fn store(partitions: u32) -> ShardStore<DenseVec> {
        ShardStore::new(PartitionMap::new(partitions).expect("nonzero"))
    }

    fn dv(xs: &[f32]) -> DenseVec {
        DenseVec::from(xs.to_vec())
    }

    #[test]
    fn updates_merge_and_lazily_materialize() {
        let mut s = store(4);
        s.apply_update(ParamKey(1), &dv(&[1.0, 2.0]));
        s.apply_update(ParamKey(1), &dv(&[0.5, -2.0]));
        assert_eq!(s.read(ParamKey(1)).unwrap().as_slice(), &[1.5, 0.0]);
        assert_eq!(s.len(), 1);
        assert!(s.read(ParamKey(2)).is_none());
    }

    #[test]
    fn install_resets_dirty_state() {
        let mut s = store(4);
        s.apply_update(ParamKey(1), &dv(&[1.0]));
        assert!(s.has_dirty());
        s.install(ParamKey(1), dv(&[9.0]));
        assert!(!s.has_dirty());
        assert_eq!(s.read(ParamKey(1)).unwrap().as_slice(), &[9.0]);
    }

    #[test]
    fn export_import_round_trips_a_partition() {
        let mut src = store(4);
        // Keys 0,4,8 fall in partition 0; key 1 in partition 1.
        for k in [0u64, 4, 8, 1] {
            src.install(ParamKey(k), dv(&[k as f32]));
        }
        let image = src.export_partition(PartitionId(0));
        assert_eq!(image.len(), 3);

        let mut dst = store(4);
        dst.import_partition(image);
        assert_eq!(dst.read(ParamKey(4)).unwrap().as_slice(), &[4.0]);
        assert!(dst.read(ParamKey(1)).is_none());
    }

    #[test]
    fn drop_partition_removes_only_that_partition() {
        let mut s = store(4);
        for k in 0..8u64 {
            s.install(ParamKey(k), dv(&[k as f32]));
        }
        let dropped = s.drop_partition(PartitionId(2));
        assert_eq!(dropped, 2); // Keys 2 and 6.
        assert!(s.read(ParamKey(2)).is_none());
        assert!(s.read(ParamKey(6)).is_none());
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn take_dirty_coalesces_updates() {
        let mut s = store(2);
        s.apply_update(ParamKey(3), &dv(&[1.0]));
        s.apply_update(ParamKey(3), &dv(&[2.0]));
        s.apply_update(ParamKey(4), &dv(&[5.0]));
        let dirty = s.take_dirty();
        assert_eq!(dirty.len(), 2);
        let d3 = dirty.iter().find(|(k, _)| *k == ParamKey(3)).unwrap();
        assert_eq!(d3.1.as_slice(), &[3.0]);
        assert!(!s.has_dirty());
        assert!(s.take_dirty().is_empty());
    }

    #[test]
    fn take_dirty_partition_drains_only_that_partition() {
        let mut s = store(2);
        s.apply_update(ParamKey(0), &dv(&[1.0])); // partition 0
        s.apply_update(ParamKey(2), &dv(&[2.0])); // partition 0
        s.apply_update(ParamKey(1), &dv(&[3.0])); // partition 1
        assert_eq!(s.dirty_partitions(), vec![PartitionId(0), PartitionId(1)]);
        let d0 = s.take_dirty_partition(PartitionId(0));
        assert_eq!(d0.len(), 2);
        assert_eq!(d0[0].0, ParamKey(0));
        assert_eq!(d0[1].0, ParamKey(2));
        assert!(s.has_dirty(), "partition 1 still dirty");
        assert_eq!(s.dirty_partitions(), vec![PartitionId(1)]);
        assert_eq!(s.take_dirty_partition(PartitionId(1)).len(), 1);
        assert!(!s.has_dirty());
    }

    #[test]
    fn apply_batch_matches_per_key_updates() {
        let batch: Vec<(ParamKey, DenseVec)> = (0..32u64)
            .map(|k| (ParamKey(k % 11), dv(&[k as f32, -(k as f32)])))
            .collect();
        let mut per_key = store(4);
        let mut batched = store(4);
        for (k, d) in &batch {
            per_key.apply_update(*k, d);
        }
        batched.apply_batch(&batch);
        assert_eq!(per_key.keys(), batched.keys());
        for k in per_key.keys() {
            assert_eq!(
                per_key.read(k).unwrap().as_slice(),
                batched.read(k).unwrap().as_slice(),
                "batched apply must be bit-identical at key {k:?}"
            );
        }
        assert_eq!(per_key.take_dirty(), batched.take_dirty());
    }

    #[test]
    fn rollback_dirty_restores_last_pushed_state() {
        let mut s = store(2);
        s.install(ParamKey(1), dv(&[10.0]));
        // Simulate a push boundary.
        let _ = s.take_dirty();
        // Updates since the push.
        s.apply_update(ParamKey(1), &dv(&[2.5]));
        s.apply_update(ParamKey(1), &dv(&[0.5]));
        assert_eq!(s.read(ParamKey(1)).unwrap().as_slice(), &[13.0]);
        // A failure elsewhere forces this shard back to the backup state.
        s.rollback_dirty(|d| {
            let mut n = d.clone();
            n.scale(-1.0);
            n
        });
        assert_eq!(s.read(ParamKey(1)).unwrap().as_slice(), &[10.0]);
        assert!(!s.has_dirty());
    }

    #[test]
    fn exported_images_are_sorted_by_key() {
        let mut s = store(1);
        for k in [9u64, 3, 7, 1] {
            s.install(ParamKey(k), dv(&[0.0]));
        }
        let image = s.export_partition(PartitionId(0));
        let keys: Vec<u64> = image.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![1, 3, 7, 9]);
        assert_eq!(
            s.keys(),
            vec![ParamKey(1), ParamKey(3), ParamKey(7), ParamKey(9)]
        );
    }

    #[test]
    fn huge_keys_spill_without_unbounded_allocation() {
        let mut s = store(2);
        let huge = ParamKey(u64::MAX - 1); // Even → partition 0, giant slot.
        s.install(huge, dv(&[7.0]));
        s.apply_update(huge, &dv(&[1.0]));
        s.install(ParamKey(0), dv(&[1.0]));
        assert_eq!(s.read(huge).unwrap().as_slice(), &[8.0]);
        assert_eq!(s.len(), 2);
        // Exports keep global key order across the dense/spill boundary.
        let image = s.export_partition(PartitionId(0));
        assert_eq!(image[0].0, ParamKey(0));
        assert_eq!(image[1].0, huge);
        assert_eq!(s.drop_partition(PartitionId(0)), 2);
        assert!(s.is_empty());
    }
}
