//! Durable, bit-exact serialization of a model snapshot.
//!
//! A checkpoint is the full parameter map exported from the ReliablePS
//! partitions at a consistent clock. The encoding must round-trip every
//! `f32` **bit-exactly** (including NaN payloads and signed zeros) so a
//! restored job is indistinguishable from one that never restarted —
//! the determinism invariant extends across restarts. Values are
//! therefore written as `to_bits()` words, never through a decimal or
//! lossy path.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic   b"PSNP"                     4 bytes
//! version u32                         4 bytes   (currently 1)
//! count   u64                         8 bytes   number of entries
//! entry*  key u64, dim u32, dim × f32-bits u32
//! ```
//!
//! Entries are written in ascending key order (the input is a
//! `BTreeMap`), so equal models produce byte-identical encodings.

use std::collections::BTreeMap;
use std::fmt;

use crate::partition::ParamKey;
use crate::value::DenseVec;

/// Format magic: identifies a parameter-snapshot blob.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"PSNP";
/// Current encoding version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A typed decode failure. Encoding is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The blob's version is not one this build can decode.
    BadVersion(u32),
    /// The blob ended before the structure it promised was complete.
    Truncated { at: usize },
    /// The same key appeared twice.
    DuplicateKey(u64),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "snapshot blob has wrong magic"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated { at } => {
                write!(f, "snapshot blob truncated at byte {at}")
            }
            SnapshotError::DuplicateKey(k) => {
                write!(f, "snapshot blob repeats key {k}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Encodes a parameter map into the durable snapshot format.
pub fn encode_model(params: &BTreeMap<ParamKey, DenseVec>) -> Vec<u8> {
    let payload: usize = params.values().map(|v| 8 + 4 + 4 * v.dim()).sum::<usize>();
    let mut out = Vec::with_capacity(4 + 4 + 8 + payload);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(params.len() as u64).to_le_bytes());
    for (key, value) in params {
        out.extend_from_slice(&key.0.to_le_bytes());
        out.extend_from_slice(&(value.dim() as u32).to_le_bytes());
        for x in value.as_slice() {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
    out
}

/// Decodes a snapshot blob back into a parameter map.
///
/// Inverse of [`encode_model`]: `decode_model(&encode_model(m)) == Ok(m)`
/// bit-exactly, for any map.
pub fn decode_model(bytes: &[u8]) -> Result<BTreeMap<ParamKey, DenseVec>, SnapshotError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], SnapshotError> {
        let start = *pos;
        let end = start
            .checked_add(n)
            .ok_or(SnapshotError::Truncated { at: start })?;
        if end > bytes.len() {
            return Err(SnapshotError::Truncated { at: start });
        }
        *pos = end;
        Ok(&bytes[start..end])
    };

    let magic = take(&mut pos, 4)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(le4(take(&mut pos, 4)?));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let count = u64::from_le_bytes(le8(take(&mut pos, 8)?));

    let mut params = BTreeMap::new();
    for _ in 0..count {
        let key = u64::from_le_bytes(le8(take(&mut pos, 8)?));
        let dim = u32::from_le_bytes(le4(take(&mut pos, 4)?)) as usize;
        let raw = take(&mut pos, 4 * dim)?;
        let mut components = Vec::with_capacity(dim);
        for chunk in raw.chunks_exact(4) {
            components.push(f32::from_bits(u32::from_le_bytes(le4(chunk))));
        }
        if params
            .insert(ParamKey(key), DenseVec::from(components))
            .is_some()
        {
            return Err(SnapshotError::DuplicateKey(key));
        }
    }
    Ok(params)
}

fn le4(s: &[u8]) -> [u8; 4] {
    [s[0], s[1], s[2], s[3]]
}

fn le8(s: &[u8]) -> [u8; 8] {
    [s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_equal(a: &BTreeMap<ParamKey, DenseVec>, b: &BTreeMap<ParamKey, DenseVec>) -> bool {
        a.len() == b.len()
            && a.iter().zip(b.iter()).all(|((ka, va), (kb, vb))| {
                ka == kb
                    && va.dim() == vb.dim()
                    && va
                        .as_slice()
                        .iter()
                        .zip(vb.as_slice())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            })
    }

    #[test]
    fn empty_model_round_trips() {
        let m = BTreeMap::new();
        let decoded = decode_model(&encode_model(&m)).unwrap();
        assert!(bits_equal(&m, &decoded));
    }

    #[test]
    fn round_trip_preserves_nan_payloads_and_signed_zero() {
        let mut m = BTreeMap::new();
        m.insert(
            ParamKey(7),
            DenseVec::from(vec![
                f32::from_bits(0x7fc0_1234), // NaN with payload
                -0.0,
                f32::INFINITY,
                f32::MIN_POSITIVE / 2.0, // subnormal
            ]),
        );
        m.insert(ParamKey(u64::MAX), DenseVec::zeros(0));
        let decoded = decode_model(&encode_model(&m)).unwrap();
        assert!(bits_equal(&m, &decoded));
    }

    #[test]
    fn encoding_is_deterministic() {
        let mut m = BTreeMap::new();
        for k in 0..32u64 {
            m.insert(ParamKey(k), DenseVec::from(vec![k as f32; 5]));
        }
        assert_eq!(encode_model(&m), encode_model(&m));
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_length() {
        let mut m = BTreeMap::new();
        m.insert(ParamKey(1), DenseVec::from(vec![1.0, 2.0]));
        m.insert(ParamKey(2), DenseVec::from(vec![3.0]));
        let full = encode_model(&m);
        for cut in 0..full.len() {
            let err = decode_model(&full[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic
                ),
                "cut at {cut} gave {err:?}"
            );
        }
        assert!(decode_model(&full).is_ok());
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let m = BTreeMap::new();
        let mut blob = encode_model(&m);
        blob[0] = b'X';
        assert_eq!(decode_model(&blob), Err(SnapshotError::BadMagic));

        let mut blob = encode_model(&m);
        blob[4] = 99;
        assert_eq!(decode_model(&blob), Err(SnapshotError::BadVersion(99)));
    }
}
