//! A sparse parameter value for high-dimensional models.
//!
//! MLR over LLC features (the paper's 21 504-dimensional weights) and
//! similar models produce updates touching few coordinates; shipping
//! dense deltas wastes the network the tiered architecture is trying to
//! protect. [`SparseVec`] stores `(index, value)` pairs sorted by index
//! and merges by index union — still commutative and associative, so it
//! satisfies the [`PsValue`] contract.

use serde::{Deserialize, Serialize};

use crate::value::PsValue;

/// A sparse vector: sorted `(index, value)` pairs over a logical
/// dimension.
///
/// # Examples
///
/// ```
/// use proteus_ps::sparse::SparseVec;
/// use proteus_ps::PsValue;
///
/// let mut a = SparseVec::new(8, vec![(1, 2.0), (5, 1.0)]).unwrap();
/// let b = SparseVec::new(8, vec![(1, -2.0), (3, 4.0)]).unwrap();
/// a.merge(&b);
/// assert_eq!(a.get(1), 0.0);
/// assert_eq!(a.get(3), 4.0);
/// assert_eq!(a.get(5), 1.0);
/// assert_eq!(a.nnz(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseVec {
    dim: usize,
    /// Sorted by index, indices strictly increasing, no explicit zeros
    /// are *required* (merging may create them; they are kept — exact
    /// cancellation is rare in float workloads and pruning would cost a
    /// pass per merge).
    entries: Vec<(u32, f32)>,
}

impl SparseVec {
    /// Creates a sparse vector over logical dimension `dim`.
    ///
    /// Returns `None` if any index is out of range, indices are not
    /// strictly increasing, or a value is non-finite.
    pub fn new(dim: usize, entries: Vec<(u32, f32)>) -> Option<Self> {
        for w in entries.windows(2) {
            if w[1].0 <= w[0].0 {
                return None;
            }
        }
        if entries
            .iter()
            .any(|(i, v)| *i as usize >= dim || !v.is_finite())
        {
            return None;
        }
        Some(SparseVec { dim, entries })
    }

    /// The all-zero sparse vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        SparseVec {
            dim,
            entries: Vec::new(),
        }
    }

    /// Logical dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The value at `index` (zero when absent).
    pub fn get(&self, index: u32) -> f32 {
        match self.entries.binary_search_by_key(&index, |(i, _)| *i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// The stored entries, sorted by index.
    pub fn entries(&self) -> &[(u32, f32)] {
        &self.entries
    }

    /// Materializes to a dense coordinate vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.dim];
        for (i, v) in &self.entries {
            out[*i as usize] = *v;
        }
        out
    }
}

impl PsValue for SparseVec {
    fn merge(&mut self, delta: &Self) {
        assert_eq!(
            self.dim, delta.dim,
            "dimension mismatch merging sparse values"
        );
        // Sorted two-way merge.
        let mut out = Vec::with_capacity(self.entries.len() + delta.entries.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.entries.len() && j < delta.entries.len() {
            let (ai, av) = self.entries[i];
            let (bi, bv) = delta.entries[j];
            match ai.cmp(&bi) {
                std::cmp::Ordering::Less => {
                    out.push((ai, av));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((bi, bv));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((ai, av + bv));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.entries[i..]);
        out.extend_from_slice(&delta.entries[j..]);
        self.entries = out;
    }

    fn zero_like(&self) -> Self {
        SparseVec::zeros(self.dim)
    }

    fn wire_bytes(&self) -> usize {
        self.entries.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<f32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(SparseVec::new(4, vec![(0, 1.0), (3, 2.0)]).is_some());
        assert!(
            SparseVec::new(4, vec![(3, 1.0), (0, 2.0)]).is_none(),
            "unsorted"
        );
        assert!(
            SparseVec::new(4, vec![(1, 1.0), (1, 2.0)]).is_none(),
            "duplicate"
        );
        assert!(SparseVec::new(4, vec![(4, 1.0)]).is_none(), "out of range");
        assert!(
            SparseVec::new(4, vec![(0, f32::NAN)]).is_none(),
            "non-finite"
        );
    }

    #[test]
    fn merge_unions_indices() {
        let mut a = SparseVec::new(6, vec![(0, 1.0), (2, 2.0)]).unwrap();
        let b = SparseVec::new(6, vec![(2, 3.0), (5, -1.0)]).unwrap();
        a.merge(&b);
        assert_eq!(a.entries(), &[(0, 1.0), (2, 5.0), (5, -1.0)]);
        assert_eq!(a.to_dense(), vec![1.0, 0.0, 5.0, 0.0, 0.0, -1.0]);
    }

    #[test]
    fn wire_bytes_tracks_nnz_not_dim() {
        let v = SparseVec::new(1_000_000, vec![(5, 1.0), (999, 2.0)]).unwrap();
        assert_eq!(v.wire_bytes(), 16);
    }

    fn sparse_strategy(dim: usize) -> impl Strategy<Value = SparseVec> {
        proptest::collection::btree_map(0u32..(dim as u32), -100.0f32..100.0, 0..8).prop_map(
            move |m| {
                SparseVec::new(dim, m.into_iter().collect()).expect("btree map keys are sorted")
            },
        )
    }

    proptest! {
        #[test]
        fn merge_matches_dense_addition(a in sparse_strategy(16), b in sparse_strategy(16)) {
            let dense: Vec<f32> = a
                .to_dense()
                .iter()
                .zip(b.to_dense().iter())
                .map(|(x, y)| x + y)
                .collect();
            let mut merged = a.clone();
            merged.merge(&b);
            prop_assert_eq!(merged.to_dense(), dense);
        }

        #[test]
        fn merge_commutes(a in sparse_strategy(16), b in sparse_strategy(16)) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab.to_dense(), ba.to_dense());
        }

        #[test]
        fn zero_is_identity(a in sparse_strategy(16)) {
            let mut merged = a.clone();
            merged.merge(&a.zero_like());
            prop_assert_eq!(merged.entries(), a.entries());
        }

        #[test]
        fn indices_stay_sorted_after_merge(a in sparse_strategy(16), b in sparse_strategy(16)) {
            let mut merged = a;
            merged.merge(&b);
            for w in merged.entries().windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
        }
    }
}
