//! The parameter-value contract and the dense-vector implementation.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::kernels;

/// A value storable in the parameter server.
///
/// The merge operation must be **commutative and associative** so that
/// updates from different workers can be applied in any order — the
/// correctness foundation of asynchronous parameter-server training. For
/// the bundled ML applications the values are [`DenseVec`]s and merge is
/// component-wise addition.
pub trait PsValue: Clone + Send + 'static {
    /// Folds another value (typically a delta) into this one.
    fn merge(&mut self, delta: &Self);

    /// The additive identity with the same shape as `self`.
    fn zero_like(&self) -> Self;

    /// Logical wire size in bytes: what shipping this value over a real
    /// network would cost, **independent of in-memory representation**.
    /// Network-volume accounting sums these, so sharing a buffer between
    /// messages (zero-copy) must not change the reported volume.
    fn wire_bytes(&self) -> usize;
}

/// A dense `f32` vector with component-wise-add aggregation.
///
/// The components live behind an [`Arc`], so cloning a `DenseVec` — the
/// operation every simnet hop, fault-injected duplicate, and read
/// response performs — is a reference-count bump, not a buffer copy.
/// Mutation goes through [`Arc::make_mut`] (copy-on-write): a uniquely
/// owned vector mutates in place; a shared one is copied exactly once
/// and is unique from then on.
///
/// # Examples
///
/// ```
/// use proteus_ps::{DenseVec, PsValue};
///
/// let mut row = DenseVec::zeros(3);
/// row.merge(&DenseVec::from(vec![1.0, 2.0, 3.0]));
/// row.merge(&DenseVec::from(vec![0.5, 0.0, -1.0]));
/// assert_eq!(row.as_slice(), &[1.5, 2.0, 2.0]);
///
/// // Clones share the buffer until one side writes.
/// let snapshot = row.clone();
/// assert!(row.shares_buffer(&snapshot));
/// row.scale(2.0);
/// assert!(!row.shares_buffer(&snapshot));
/// assert_eq!(snapshot.as_slice(), &[1.5, 2.0, 2.0]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DenseVec(Arc<Vec<f32>>);

impl DenseVec {
    /// A zero vector of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        DenseVec(Arc::new(vec![0.0; dim]))
    }

    /// The vector's dimension.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Read-only view of the components.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Mutable view of the components (copy-on-write: unshares first).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.0).as_mut_slice()
    }

    /// Consumes the vector, returning its components (copying only if
    /// the buffer is still shared with another clone).
    pub fn into_inner(self) -> Vec<f32> {
        Arc::try_unwrap(self.0).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Whether `self` and `other` share one underlying buffer (i.e. one
    /// is a zero-copy clone of the other). Diagnostic/test helper for
    /// the zero-copy messaging invariants.
    pub fn shares_buffer(&self, other: &DenseVec) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Adds `scale * other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ — mixing shapes under one key is a
    /// programming error in the application.
    pub fn axpy(&mut self, scale: f32, other: &DenseVec) {
        kernels::axpy(Arc::make_mut(&mut self.0).as_mut_slice(), scale, &other.0);
    }

    /// Scales every component in place.
    pub fn scale(&mut self, factor: f32) {
        kernels::scale(Arc::make_mut(&mut self.0).as_mut_slice(), factor);
    }

    /// The fused linear combination `s * x + t * y` as a fresh vector —
    /// one pass over the operands where `clone` + `scale` + `axpy`
    /// would take three.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn lincomb(s: f32, x: &DenseVec, t: f32, y: &DenseVec) -> DenseVec {
        DenseVec(Arc::new(kernels::lincomb(s, &x.0, t, &y.0)))
    }

    /// The dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn dot(&self, other: &DenseVec) -> f32 {
        kernels::dot(&self.0, &other.0)
    }

    /// The squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        kernels::norm_sq(&self.0)
    }
}

impl From<Vec<f32>> for DenseVec {
    fn from(v: Vec<f32>) -> Self {
        DenseVec(Arc::new(v))
    }
}

impl PartialEq for DenseVec {
    fn eq(&self, other: &Self) -> bool {
        self.shares_buffer(other) || self.0 == other.0
    }
}

impl PsValue for DenseVec {
    fn merge(&mut self, delta: &Self) {
        kernels::add_assign(Arc::make_mut(&mut self.0).as_mut_slice(), &delta.0);
    }

    fn zero_like(&self) -> Self {
        DenseVec::zeros(self.0.len())
    }

    fn wire_bytes(&self) -> usize {
        self.0.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn merge_is_componentwise_add() {
        let mut a = DenseVec::from(vec![1.0, -2.0]);
        a.merge(&DenseVec::from(vec![0.5, 2.0]));
        assert_eq!(a.as_slice(), &[1.5, 0.0]);
    }

    #[test]
    fn zero_like_preserves_shape() {
        let a = DenseVec::from(vec![3.0; 7]);
        let z = a.zero_like();
        assert_eq!(z.dim(), 7);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn wire_bytes_scales_with_dim() {
        assert_eq!(DenseVec::zeros(100).wire_bytes(), 400);
    }

    #[test]
    fn axpy_and_dot() {
        let mut a = DenseVec::from(vec![1.0, 2.0]);
        let b = DenseVec::from(vec![3.0, 4.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[7.0, 10.0]);
        assert_eq!(a.dot(&b), 61.0);
        assert_eq!(b.norm_sq(), 25.0);
    }

    #[test]
    fn lincomb_fuses_scale_and_axpy() {
        let x = DenseVec::from(vec![1.0, 2.0, 3.0]);
        let y = DenseVec::from(vec![10.0, 20.0, 30.0]);
        let z = DenseVec::lincomb(2.0, &x, 0.5, &y);
        assert_eq!(z.as_slice(), &[7.0, 14.0, 21.0]);
    }

    #[test]
    fn clone_shares_until_write() {
        let a = DenseVec::from(vec![1.0, 2.0]);
        let mut b = a.clone();
        assert!(a.shares_buffer(&b), "clone must be zero-copy");
        b.merge(&DenseVec::from(vec![1.0, 1.0]));
        assert!(!a.shares_buffer(&b), "write must unshare");
        assert_eq!(a.as_slice(), &[1.0, 2.0], "original untouched");
        assert_eq!(b.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn unique_merge_mutates_in_place() {
        let mut a = DenseVec::from(vec![1.0; 16]);
        let before = a.as_slice().as_ptr();
        a.merge(&DenseVec::from(vec![2.0; 16]));
        assert_eq!(
            a.as_slice().as_ptr(),
            before,
            "uniquely owned buffer must not be reallocated by merge"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = DenseVec::zeros(2);
        a.merge(&DenseVec::zeros(3));
    }

    fn vec_strategy(dim: usize) -> impl Strategy<Value = DenseVec> {
        proptest::collection::vec(-100.0f32..100.0, dim).prop_map(DenseVec::from)
    }

    proptest! {
        #[test]
        fn merge_commutes(a in vec_strategy(8), b in vec_strategy(8)) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            for (x, y) in ab.as_slice().iter().zip(ba.as_slice()) {
                prop_assert!((x - y).abs() <= f32::EPSILON * x.abs().max(1.0));
            }
        }

        #[test]
        fn merge_associates(a in vec_strategy(8), b in vec_strategy(8), c in vec_strategy(8)) {
            // (a+b)+c vs a+(b+c): fp-exact for addition order of two sums
            // is not guaranteed in general, but component-wise addition of
            // three f32s in either grouping differs by at most one ulp of
            // the result; allow a tolerance.
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
                prop_assert!((x - y).abs() <= 1e-3 * x.abs().max(1.0));
            }
        }

        #[test]
        fn zero_is_identity(a in vec_strategy(8)) {
            let mut merged = a.clone();
            merged.merge(&a.zero_like());
            prop_assert_eq!(merged.as_slice(), a.as_slice());
        }
    }
}
