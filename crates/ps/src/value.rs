//! The parameter-value contract and the dense-vector implementation.

use serde::{Deserialize, Serialize};

/// A value storable in the parameter server.
///
/// The merge operation must be **commutative and associative** so that
/// updates from different workers can be applied in any order — the
/// correctness foundation of asynchronous parameter-server training. For
/// the bundled ML applications the values are [`DenseVec`]s and merge is
/// component-wise addition.
pub trait PsValue: Clone + Send + 'static {
    /// Folds another value (typically a delta) into this one.
    fn merge(&mut self, delta: &Self);

    /// The additive identity with the same shape as `self`.
    fn zero_like(&self) -> Self;

    /// Approximate wire size in bytes, used by network-volume accounting.
    fn wire_bytes(&self) -> usize;
}

/// A dense `f32` vector with component-wise-add aggregation.
///
/// # Examples
///
/// ```
/// use proteus_ps::{DenseVec, PsValue};
///
/// let mut row = DenseVec::zeros(3);
/// row.merge(&DenseVec::from(vec![1.0, 2.0, 3.0]));
/// row.merge(&DenseVec::from(vec![0.5, 0.0, -1.0]));
/// assert_eq!(row.as_slice(), &[1.5, 2.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseVec(Vec<f32>);

impl DenseVec {
    /// A zero vector of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        DenseVec(vec![0.0; dim])
    }

    /// The vector's dimension.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Read-only view of the components.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Mutable view of the components.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.0
    }

    /// Consumes the vector, returning its components.
    pub fn into_inner(self) -> Vec<f32> {
        self.0
    }

    /// Adds `scale * other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ — mixing shapes under one key is a
    /// programming error in the application.
    pub fn axpy(&mut self, scale: f32, other: &DenseVec) {
        assert_eq!(self.0.len(), other.0.len(), "dimension mismatch in axpy");
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += scale * b;
        }
    }

    /// Scales every component in place.
    pub fn scale(&mut self, factor: f32) {
        for a in &mut self.0 {
            *a *= factor;
        }
    }

    /// The dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn dot(&self, other: &DenseVec) -> f32 {
        assert_eq!(self.0.len(), other.0.len(), "dimension mismatch in dot");
        self.0.iter().zip(other.0.iter()).map(|(a, b)| a * b).sum()
    }

    /// The squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.0.iter().map(|a| a * a).sum()
    }
}

impl From<Vec<f32>> for DenseVec {
    fn from(v: Vec<f32>) -> Self {
        DenseVec(v)
    }
}

impl PsValue for DenseVec {
    fn merge(&mut self, delta: &Self) {
        assert_eq!(
            self.0.len(),
            delta.0.len(),
            "dimension mismatch merging parameter values"
        );
        for (a, b) in self.0.iter_mut().zip(delta.0.iter()) {
            *a += b;
        }
    }

    fn zero_like(&self) -> Self {
        DenseVec::zeros(self.0.len())
    }

    fn wire_bytes(&self) -> usize {
        self.0.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn merge_is_componentwise_add() {
        let mut a = DenseVec::from(vec![1.0, -2.0]);
        a.merge(&DenseVec::from(vec![0.5, 2.0]));
        assert_eq!(a.as_slice(), &[1.5, 0.0]);
    }

    #[test]
    fn zero_like_preserves_shape() {
        let a = DenseVec::from(vec![3.0; 7]);
        let z = a.zero_like();
        assert_eq!(z.dim(), 7);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn wire_bytes_scales_with_dim() {
        assert_eq!(DenseVec::zeros(100).wire_bytes(), 400);
    }

    #[test]
    fn axpy_and_dot() {
        let mut a = DenseVec::from(vec![1.0, 2.0]);
        let b = DenseVec::from(vec![3.0, 4.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[7.0, 10.0]);
        assert_eq!(a.dot(&b), 61.0);
        assert_eq!(b.norm_sq(), 25.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = DenseVec::zeros(2);
        a.merge(&DenseVec::zeros(3));
    }

    fn vec_strategy(dim: usize) -> impl Strategy<Value = DenseVec> {
        proptest::collection::vec(-100.0f32..100.0, dim).prop_map(DenseVec::from)
    }

    proptest! {
        #[test]
        fn merge_commutes(a in vec_strategy(8), b in vec_strategy(8)) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            for (x, y) in ab.as_slice().iter().zip(ba.as_slice()) {
                prop_assert!((x - y).abs() <= f32::EPSILON * x.abs().max(1.0));
            }
        }

        #[test]
        fn merge_associates(a in vec_strategy(8), b in vec_strategy(8), c in vec_strategy(8)) {
            // (a+b)+c vs a+(b+c): fp-exact for addition order of two sums
            // is not guaranteed in general, but component-wise addition of
            // three f32s in either grouping differs by at most one ulp of
            // the result; allow a tolerance.
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
                prop_assert!((x - y).abs() <= 1e-3 * x.abs().max(1.0));
            }
        }

        #[test]
        fn zero_is_identity(a in vec_strategy(8)) {
            let mut merged = a.clone();
            merged.merge(&a.zero_like());
            prop_assert_eq!(merged.as_slice(), a.as_slice());
        }
    }
}
