//! Shared `(key, value)` payload buffers for zero-copy messaging.
//!
//! Every data-plane message — read responses, update batches, backup
//! pushes, partition images — carries a list of `(ParamKey, V)` pairs.
//! Before this type existed those lists were plain `Vec`s, so every
//! simnet hop, fault-injected duplicate, and delayed redelivery deep-
//! cloned the full parameter payload. [`Values`] wraps the list in an
//! [`Arc`]: cloning a message is a reference-count bump, and the fault
//! layer's duplicate/delay verdicts *share* the payload with the
//! original delivery instead of copying it.
//!
//! The buffer is copy-on-write ([`Arc::make_mut`]): builders `push`
//! into a uniquely owned buffer at Vec cost, and the payload only
//! becomes shared once it is cloned into the network.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::partition::ParamKey;
use crate::value::PsValue;

/// A shared, cheaply clonable list of `(key, value)` pairs.
///
/// # Examples
///
/// ```
/// use proteus_ps::{DenseVec, ParamKey, Values};
///
/// let mut vals: Values<DenseVec> = Values::new();
/// vals.push((ParamKey(3), DenseVec::zeros(4)));
/// let on_the_wire = vals.clone();          // Arc bump, no buffer copy.
/// assert!(vals.shares_buffer(&on_the_wire));
/// assert_eq!(on_the_wire.len(), 1);
/// assert_eq!(on_the_wire[0].0, ParamKey(3));
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct Values<V>(Arc<Vec<(ParamKey, V)>>);

impl<V> Values<V> {
    /// The empty payload.
    pub fn new() -> Self {
        Values(Arc::new(Vec::new()))
    }

    /// Read-only view of the pairs.
    pub fn as_slice(&self) -> &[(ParamKey, V)] {
        &self.0
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates the pairs.
    pub fn iter(&self) -> std::slice::Iter<'_, (ParamKey, V)> {
        self.0.iter()
    }

    /// Whether `self` and `other` share one underlying buffer — the
    /// zero-copy invariant checked by messaging tests.
    pub fn shares_buffer(&self, other: &Values<V>) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl<V: Clone> Values<V> {
    /// Appends a pair (copy-on-write: unshares the buffer first).
    pub fn push(&mut self, pair: (ParamKey, V)) {
        Arc::make_mut(&mut self.0).push(pair);
    }

    /// Consumes the payload, returning the pairs (copying only if the
    /// buffer is still shared).
    pub fn into_vec(self) -> Vec<(ParamKey, V)> {
        Arc::try_unwrap(self.0).unwrap_or_else(|shared| (*shared).clone())
    }
}

impl<V: PsValue> Values<V> {
    /// Logical wire size: each pair ships its value plus an 8-byte key,
    /// exactly what the per-key path would ship pair by pair. Sharing
    /// the buffer across duplicated/delayed messages does not change
    /// the per-message volume reported here.
    pub fn wire_bytes(&self) -> usize {
        self.0
            .iter()
            .map(|(_, v)| v.wire_bytes() + std::mem::size_of::<u64>())
            .sum()
    }
}

impl<V> Default for Values<V> {
    fn default() -> Self {
        Values::new()
    }
}

impl<V> Clone for Values<V> {
    fn clone(&self) -> Self {
        Values(Arc::clone(&self.0))
    }
}

impl<V: PartialEq> PartialEq for Values<V> {
    fn eq(&self, other: &Self) -> bool {
        self.shares_buffer(other) || self.0 == other.0
    }
}

impl<V> std::ops::Deref for Values<V> {
    type Target = [(ParamKey, V)];

    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl<V> From<Vec<(ParamKey, V)>> for Values<V> {
    fn from(v: Vec<(ParamKey, V)>) -> Self {
        Values(Arc::new(v))
    }
}

impl<V> FromIterator<(ParamKey, V)> for Values<V> {
    fn from_iter<I: IntoIterator<Item = (ParamKey, V)>>(iter: I) -> Self {
        Values(Arc::new(iter.into_iter().collect()))
    }
}

impl<V: Clone> IntoIterator for Values<V> {
    type Item = (ParamKey, V);
    type IntoIter = std::vec::IntoIter<(ParamKey, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.into_vec().into_iter()
    }
}

impl<'a, V> IntoIterator for &'a Values<V> {
    type Item = &'a (ParamKey, V);
    type IntoIter = std::slice::Iter<'a, (ParamKey, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DenseVec;

    fn sample() -> Values<DenseVec> {
        vec![
            (ParamKey(1), DenseVec::from(vec![1.0, 2.0])),
            (ParamKey(5), DenseVec::from(vec![3.0])),
        ]
        .into()
    }

    #[test]
    fn clone_is_zero_copy_until_push() {
        let a = sample();
        let mut b = a.clone();
        assert!(a.shares_buffer(&b));
        b.push((ParamKey(9), DenseVec::zeros(1)));
        assert!(!a.shares_buffer(&b), "push must unshare");
        assert_eq!(a.len(), 2, "original untouched");
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn wire_bytes_matches_per_pair_sum() {
        let v = sample();
        // (2×4 + 8) + (1×4 + 8).
        assert_eq!(v.wire_bytes(), 16 + 12);
        // Sharing does not change per-message accounting.
        let dup = v.clone();
        assert_eq!(dup.wire_bytes(), v.wire_bytes());
    }

    #[test]
    fn into_vec_avoids_copy_when_unique() {
        let v = sample();
        let ptr = v.as_slice().as_ptr();
        let inner = v.into_vec();
        assert_eq!(inner.as_ptr(), ptr, "unique payload must move, not copy");
    }

    #[test]
    fn iteration_and_indexing_work_through_deref() {
        let v = sample();
        assert_eq!(v[0].0, ParamKey(1));
        let keys: Vec<ParamKey> = v.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![ParamKey(1), ParamKey(5)]);
        let consumed: Vec<(ParamKey, DenseVec)> = v.clone().into_iter().collect();
        assert_eq!(consumed.len(), 2);
        for (k, _) in &v {
            assert!(k.0 >= 1);
        }
    }
}
