//! Property: the batched data plane is *bit-identical* to the per-key
//! path. Any update sequence, split into arbitrary batches and applied
//! via [`ShardStore::apply_batch`], must leave exactly the state (values
//! AND dirty aggregates) that applying each `(key, delta)` through
//! [`ShardStore::apply_update`] leaves — regardless of how the sequence
//! is interleaved across batch boundaries or partitions.
//!
//! This is the invariant that lets the PS switch workers to batched
//! messages without perturbing convergence tests, rollback deltas, or
//! the obs determinism suite.

use proptest::prelude::*;
use proteus_ps::{DenseVec, KeySet, ParamKey, PartitionId, PartitionMap, PsValue, ShardStore};

/// An update op: `(key, scalar seed)` expanded to a dim-4 delta.
fn delta(seed: f32) -> DenseVec {
    DenseVec::from(vec![seed, seed * 0.5, -seed, seed + 1.0])
}

fn store(partitions: u32) -> ShardStore<DenseVec> {
    let layout = PartitionMap::new(partitions).expect("nonzero partitions");
    ShardStore::new(layout)
}

/// Splits `ops` into chunks whose sizes cycle through `splits`.
fn chunked(ops: &[(u64, f32)], splits: &[usize]) -> Vec<Vec<(ParamKey, DenseVec)>> {
    let mut chunks = Vec::new();
    let mut i = 0;
    let mut s = 0;
    while i < ops.len() {
        let take = if splits.is_empty() {
            ops.len()
        } else {
            splits[s % splits.len()].max(1)
        };
        s += 1;
        let end = (i + take).min(ops.len());
        chunks.push(
            ops[i..end]
                .iter()
                .map(|&(k, x)| (ParamKey(k), delta(x)))
                .collect(),
        );
        i = end;
    }
    chunks
}

/// Full observable state of a store: per-partition sorted images plus
/// the coalesced dirty aggregate.
#[allow(clippy::type_complexity)]
fn observe(
    store: &mut ShardStore<DenseVec>,
    partitions: u32,
) -> (Vec<Vec<(ParamKey, DenseVec)>>, Vec<(ParamKey, DenseVec)>) {
    let images = (0..partitions)
        .map(|p| store.export_partition(PartitionId(p)))
        .collect();
    (images, store.take_dirty())
}

proptest! {
    #[test]
    fn batched_equals_per_key_under_any_interleaving(
        partitions in 1u32..6,
        ops in proptest::collection::vec((0u64..64, -100.0f32..100.0), 0..120),
        splits in proptest::collection::vec(1usize..9, 0..20),
    ) {
        // Per-key reference: one apply_update per op, in order.
        let mut per_key = store(partitions);
        for &(k, x) in &ops {
            per_key.apply_update(ParamKey(k), &delta(x));
        }

        // Batched path: the same ops, sliced into arbitrary batches.
        let mut batched = store(partitions);
        for chunk in chunked(&ops, &splits) {
            batched.apply_batch(&chunk);
        }

        let (img_a, dirty_a) = observe(&mut per_key, partitions);
        let (img_b, dirty_b) = observe(&mut batched, partitions);
        prop_assert_eq!(img_a, img_b);
        prop_assert_eq!(dirty_a, dirty_b);
    }

    #[test]
    fn per_partition_dirty_drain_equals_global_drain(
        partitions in 1u32..6,
        ops in proptest::collection::vec((0u64..64, -100.0f32..100.0), 0..120),
    ) {
        let mut a = store(partitions);
        let mut b = store(partitions);
        for &(k, x) in &ops {
            a.apply_update(ParamKey(k), &delta(x));
            b.apply_update(ParamKey(k), &delta(x));
        }
        // Global drain (sorted by key) vs per-partition drains stitched
        // back together in key order.
        let global = a.take_dirty();
        let mut stitched: Vec<(ParamKey, DenseVec)> = Vec::new();
        for p in b.dirty_partitions() {
            stitched.extend(b.take_dirty_partition(p));
        }
        stitched.sort_by_key(|(k, _)| *k);
        prop_assert_eq!(global, stitched);
        prop_assert!(!b.has_dirty());
    }

    #[test]
    fn keyset_read_plan_equals_per_key_reads(
        partitions in 1u32..6,
        installs in proptest::collection::vec((0u64..64, -100.0f32..100.0), 0..80),
        queried in proptest::collection::vec(0u64..96, 0..80),
    ) {
        let mut s = store(partitions);
        for &(k, x) in &installs {
            s.install(ParamKey(k), delta(x));
        }
        let mut keys: Vec<ParamKey> = queried.into_iter().map(ParamKey).collect();
        keys.sort_unstable();
        keys.dedup();

        // Per-key reference read (misses omitted).
        let direct: Vec<(ParamKey, DenseVec)> = keys
            .iter()
            .filter_map(|&k| s.read(k).map(|v| (k, v.clone())))
            .collect();
        // Batched read: the compressed KeySet drives the same lookups.
        let set = KeySet::from_sorted(&keys);
        let via_set: Vec<(ParamKey, DenseVec)> = set
            .iter()
            .filter_map(|k| s.read(k).map(|v| (k, v.clone())))
            .collect();
        prop_assert_eq!(&direct, &via_set);
        // Logical wire accounting matches the per-key request exactly.
        prop_assert_eq!(set.wire_bytes(), keys.len() * 8);
        let value_bytes: usize = direct.iter().map(|(_, v)| v.wire_bytes() + 8).sum();
        let per_key_bytes: usize = via_set.iter().map(|(_, v)| v.wire_bytes() + 8).sum();
        prop_assert_eq!(value_bytes, per_key_bytes);
    }
}
