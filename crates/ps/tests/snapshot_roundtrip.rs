//! Property tests for the durable snapshot encoding: export → restore
//! must be **bit-identical** for any model a job could ever hold —
//! arbitrary key layouts (clustered, sparse, extreme ids), arbitrary
//! dimensions including zero, and every f32 bit pattern including NaN
//! payloads, infinities, subnormals, and signed zeros.
//!
//! Sizes scale with `PROTEUS_DATA_SCALE` like the dataset generators:
//! soak runs get proportionally larger models without changing the
//! structure of the cases.

use std::collections::BTreeMap;

use proptest::prelude::*;
use proteus_ps::{decode_model, encode_model, DenseVec, ParamKey, SnapshotError};

fn data_scale() -> usize {
    std::env::var("PROTEUS_DATA_SCALE")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// Arbitrary f32 *bit patterns* — uniform over the whole 2^32 space, so
/// NaNs (quiet and signaling, any payload), infinities, subnormals, and
/// both zeros all occur.
fn any_f32_bits() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

/// An arbitrary model: up to `keys` entries over the full u64 key space
/// (so layouts from dense-clustered to astronomically sparse appear),
/// each with an independent dimension in `0..=max_dim`.
fn arb_model(keys: usize, max_dim: usize) -> impl Strategy<Value = BTreeMap<ParamKey, DenseVec>> {
    proptest::collection::btree_map(
        any::<u64>().prop_map(ParamKey),
        proptest::collection::vec(any_f32_bits(), 0..max_dim + 1).prop_map(DenseVec::from),
        0..keys + 1,
    )
}

fn bits(m: &BTreeMap<ParamKey, DenseVec>) -> Vec<(u64, Vec<u32>)> {
    m.iter()
        .map(|(k, v)| (k.0, v.as_slice().iter().map(|x| x.to_bits()).collect()))
        .collect()
}

proptest! {
    /// The round trip is the identity on bit patterns, whatever the
    /// layout or contents.
    #[test]
    fn export_restore_is_bit_identical(model in arb_model(24 * data_scale(), 16)) {
        let decoded = decode_model(&encode_model(&model)).expect("decode");
        prop_assert_eq!(bits(&model), bits(&decoded));
    }

    /// Equal models encode to byte-identical blobs (the BTreeMap order
    /// is canonical), so checkpoint artifacts are reproducible.
    #[test]
    fn encoding_is_canonical(model in arb_model(12 * data_scale(), 8)) {
        prop_assert_eq!(encode_model(&model), encode_model(&model.clone()));
    }

    /// No truncation of a valid blob decodes: every cut is a typed
    /// error, never a partial model passed off as complete — the
    /// property that makes single-slot checkpoint swaps atomic.
    #[test]
    fn every_truncation_is_rejected(model in arb_model(6, 6)) {
        let full = encode_model(&model);
        for cut in 0..full.len() {
            match decode_model(&full[..cut]) {
                Err(SnapshotError::Truncated { .. }) | Err(SnapshotError::BadMagic) => {}
                other => prop_assert!(false, "cut {cut} gave {other:?}"),
            }
        }
    }

    /// Flipping any single byte of the header region is caught by the
    /// magic/version/count checks or yields a typed error — never a
    /// panic.
    #[test]
    fn header_corruption_never_panics(
        model in arb_model(4, 4),
        at in 0usize..16,
        xor in 1u8..255,
    ) {
        let mut blob = encode_model(&model);
        if at < blob.len() {
            blob[at] ^= xor;
            let _ = decode_model(&blob);
        }
    }
}
