//! The cluster runtime: node registry, routing, fault injection.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::RwLock;

use proteus_obs::Recorder;

use crate::fault::{FaultLayer, FaultPlan, FaultStats};
use crate::message::{Control, Envelope, Incoming, SendError};
use crate::node::{NodeClass, NodeCtx, NodeId};

/// Aggregate traffic counters for the whole cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Application messages successfully delivered.
    pub messages: u64,
    /// Messages dropped because the destination was dead or absent.
    pub dropped: u64,
}

/// Per-node bookkeeping held by the registry.
struct NodeEntry<M> {
    tx: Sender<Incoming<M>>,
    class: NodeClass,
    dead: bool,
}

/// Shared cluster state: the routing registry and traffic counters.
pub struct ClusterInner<M> {
    nodes: RwLock<HashMap<NodeId, NodeEntry<M>>>,
    messages: AtomicU64,
    dropped: AtomicU64,
    /// Delivered-message counts per (sender, receiver) pair.
    traffic: RwLock<HashMap<(NodeId, NodeId), u64>>,
    /// Installed message-fault layer, if any.
    faults: RwLock<Option<Arc<FaultLayer<M>>>>,
    /// Observability mirror handed to each fault layer so injected-fault
    /// counters survive the layer being replaced or cleared.
    recorder: RwLock<Option<Arc<Recorder>>>,
}

impl<M: Send + Clone + 'static> ClusterInner<M> {
    /// Routes an application message through the fault layer (if any),
    /// counting drops to dead targets.
    ///
    /// The sender's result reflects only its *own* message: success iff
    /// the fault layer absorbed it (drop/delay — the network ate it) or
    /// at least one copy reached the destination. The fate of a
    /// previously-held message released by this traffic never leaks into
    /// the current sender's result (its failures are still counted as
    /// drops by [`ClusterInner::route`]).
    pub(crate) fn deliver(&self, from: NodeId, to: NodeId, msg: M) -> Result<(), SendError> {
        let layer = self.faults.read().clone();
        match layer {
            None => self.route(from, to, msg),
            Some(layer) => {
                let applied = layer.apply(from, to, msg);
                let mut delivered = false;
                let mut first_err = None;
                for m in applied.copies {
                    match self.route(from, to, m) {
                        Ok(()) => delivered = true,
                        Err(e) => {
                            first_err.get_or_insert(e);
                        }
                    }
                }
                if let Some(m) = applied.released {
                    let _ = self.route(from, to, m);
                }
                if delivered || applied.absorbed {
                    Ok(())
                } else {
                    Err(first_err.unwrap_or(SendError::Unreachable(to)))
                }
            }
        }
    }

    /// Delivers one message to its destination mailbox, bypassing the
    /// fault layer.
    fn route(&self, from: NodeId, to: NodeId, msg: M) -> Result<(), SendError> {
        let nodes = self.nodes.read();
        if let Some(entry) = nodes.get(&to).filter(|e| !e.dead) {
            // A send only fails if the receiver was torn down between
            // the liveness check and the send; treat it as a drop.
            if entry.tx.send(Incoming::App(Envelope { from, msg })).is_ok() {
                self.messages.fetch_add(1, Ordering::Relaxed);
                *self.traffic.write().entry((from, to)).or_insert(0) += 1;
                return Ok(());
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
        Err(SendError::Unreachable(to))
    }

    /// Installs (or replaces) the message-fault layer.
    ///
    /// A replaced layer is flushed first, exactly like
    /// [`ClusterInner::clear_faults`]: its held (delayed) messages are
    /// routed to their destinations rather than silently destroyed, and
    /// any that are undeliverable are counted in [`NetStats::dropped`]
    /// by [`ClusterInner::route`].
    pub(crate) fn set_faults(&self, plan: FaultPlan<M>) {
        self.flush_delayed();
        let obs = self.recorder.read().clone();
        *self.faults.write() = Some(Arc::new(FaultLayer::new(plan, obs)));
    }

    /// Attaches an observability recorder; the current fault layer (if
    /// any) and every future one mirror their counters into it.
    pub(crate) fn set_recorder(&self, rec: Arc<Recorder>) {
        if let Some(layer) = self.faults.read().as_deref() {
            layer.set_recorder(Arc::clone(&rec));
        }
        *self.recorder.write() = Some(rec);
    }

    /// Removes the message-fault layer, first flushing held messages.
    pub(crate) fn clear_faults(&self) {
        self.flush_delayed();
        *self.faults.write() = None;
    }

    /// Releases every delayed (held-back) message to its destination.
    /// Returns how many were flushed.
    pub(crate) fn flush_delayed(&self) -> usize {
        let layer = self.faults.read().clone();
        let Some(layer) = layer else { return 0 };
        let held = layer.drain_held();
        let n = held.len();
        for (from, to, msg) in held {
            let _ = self.route(from, to, msg);
        }
        n
    }

    /// Counters of message faults injected so far.
    pub(crate) fn fault_stats(&self) -> FaultStats {
        self.faults
            .read()
            .as_ref()
            .map(|l| l.stats())
            .unwrap_or_default()
    }

    pub(crate) fn is_dead(&self, node: NodeId) -> bool {
        self.nodes.read().get(&node).is_none_or(|e| e.dead)
    }

    pub(crate) fn is_alive(&self, node: NodeId) -> bool {
        !self.is_dead(node)
    }
}

/// A handle for interacting with the cluster from outside any node
/// (e.g. from the test harness or the BidBrain driver).
///
/// Cloneable; all clones share the same registry.
pub struct ClusterHandle<M: Send + Clone + 'static> {
    inner: Arc<ClusterInner<M>>,
}

impl<M: Send + Clone + 'static> Clone for ClusterHandle<M> {
    fn clone(&self) -> Self {
        ClusterHandle {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: Send + Clone + 'static> ClusterHandle<M> {
    /// Sends a control signal to a node.
    pub fn send_control(&self, to: NodeId, ctrl: Control) -> Result<(), SendError> {
        let nodes = self.inner.nodes.read();
        match nodes.get(&to) {
            Some(entry) if !entry.dead => entry
                .tx
                .send(Incoming::Control(ctrl))
                .map_err(|_| SendError::Unreachable(to)),
            _ => Err(SendError::Unreachable(to)),
        }
    }

    /// Sends an application message on behalf of the harness.
    ///
    /// The message is attributed to the reserved synthetic id
    /// [`NodeId::HARNESS`], which [`Cluster::spawn`] can never allocate.
    pub fn send_as_harness(&self, to: NodeId, msg: M) -> Result<(), SendError> {
        self.inner.deliver(NodeId::HARNESS, to, msg)
    }

    /// Whether `node` is alive (spawned and not killed).
    pub fn alive(&self, node: NodeId) -> bool {
        self.inner.is_alive(node)
    }

    /// Installs (or replaces) a message-[`FaultPlan`] on the cluster.
    pub fn set_faults(&self, plan: FaultPlan<M>) {
        self.inner.set_faults(plan);
    }

    /// Releases every delayed (held-back) message; see
    /// [`Cluster::flush_delayed`].
    pub fn flush_delayed(&self) -> usize {
        self.inner.flush_delayed()
    }

    /// Counters of message faults injected so far (zeros if no plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }

    /// Attaches an observability recorder; injected message faults bump
    /// its `simnet.msg.*` counters from now on, across plan changes.
    pub fn set_recorder(&self, rec: Arc<Recorder>) {
        self.inner.set_recorder(rec);
    }
}

/// An in-process cluster of nodes, each running on its own thread.
///
/// # Examples
///
/// ```
/// use proteus_simnet::{Cluster, Incoming, NodeClass};
///
/// let mut cluster: Cluster<u64> = Cluster::new();
/// let echo = cluster.spawn(NodeClass::Reliable, |ctx| {
///     // Echo one message back to its sender, doubled.
///     if let Ok(Incoming::App(env)) = ctx.recv() {
///         let _ = ctx.send(env.from, env.msg * 2);
///     }
/// });
/// let probe = cluster.spawn(NodeClass::Transient, move |ctx| {
///     ctx.send(echo, 21).unwrap();
///     if let Ok(Incoming::App(env)) = ctx.recv() {
///         assert_eq!(env.msg, 42);
///     }
/// });
/// cluster.join();
/// # let _ = probe;
/// ```
pub struct Cluster<M: Send + Clone + 'static> {
    inner: Arc<ClusterInner<M>>,
    handles: Vec<(NodeId, JoinHandle<()>)>,
    next_id: u32,
}

impl<M: Send + Clone + 'static> Default for Cluster<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Send + Clone + 'static> Cluster<M> {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Cluster {
            inner: Arc::new(ClusterInner {
                nodes: RwLock::new(HashMap::new()),
                messages: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                traffic: RwLock::new(HashMap::new()),
                faults: RwLock::new(None),
                recorder: RwLock::new(None),
            }),
            handles: Vec::new(),
            next_id: 0,
        }
    }

    /// Installs (or replaces) a message-[`FaultPlan`]: every subsequent
    /// application message is routed through it. Node-level faults
    /// (crashes, warnings) are scripted via [`Cluster::kill`] /
    /// [`Cluster::revoke`] instead.
    pub fn set_faults(&self, plan: FaultPlan<M>) {
        self.inner.set_faults(plan);
    }

    /// Removes the fault layer, flushing any held-back messages first.
    pub fn clear_faults(&self) {
        self.inner.clear_faults();
    }

    /// Releases every delayed (held-back) message to its destination;
    /// returns how many were flushed. Drivers call this before blocking
    /// on protocol progress so a delayed message that happens to be the
    /// last traffic on its pair cannot deadlock the run.
    pub fn flush_delayed(&self) -> usize {
        self.inner.flush_delayed()
    }

    /// Counters of message faults injected so far (zeros if no plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }

    /// Attaches an observability recorder; injected message faults bump
    /// its `simnet.msg.*` counters from now on, even when
    /// [`Cluster::set_faults`] later replaces the layer (whose own
    /// [`FaultStats`] reset with it).
    pub fn set_recorder(&self, rec: Arc<Recorder>) {
        self.inner.set_recorder(rec);
    }

    /// A cloneable handle for harness-side interaction.
    pub fn handle(&self) -> ClusterHandle<M> {
        ClusterHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Spawns a node of the given reliability class running `behavior` on
    /// a dedicated thread, returning its id.
    pub fn spawn<F>(&mut self, class: NodeClass, behavior: F) -> NodeId
    where
        F: FnOnce(NodeCtx<M>) + Send + 'static,
    {
        // `NodeId::HARNESS` (u32::MAX) is reserved for harness-attributed
        // traffic; a spawned node must never collide with it.
        assert!(
            self.next_id < NodeId::HARNESS.0,
            "simnet cluster exhausted the spawnable NodeId space"
        );
        let id = NodeId(self.next_id);
        self.next_id += 1;
        let (tx, rx) = unbounded();
        self.inner.nodes.write().insert(
            id,
            NodeEntry {
                tx,
                class,
                dead: false,
            },
        );
        let ctx = NodeCtx {
            id,
            class,
            inner: Arc::clone(&self.inner),
            rx,
        };
        // Thread spawning only fails on OS resource exhaustion, at which
        // point the whole simulated cluster is unrecoverable anyway.
        #[allow(clippy::expect_used)]
        let handle = std::thread::Builder::new()
            .name(format!("simnet-{}", id.0))
            .spawn(move || behavior(ctx))
            .expect("spawning a simnet node thread");
        self.handles.push((id, handle));
        id
    }

    /// Delivers an eviction warning to `node` — the node keeps running and
    /// can drain state; the harness typically calls [`Cluster::kill`] when
    /// the deadline passes.
    pub fn revoke(&self, node: NodeId, deadline_ms: u64) -> Result<(), SendError> {
        self.handle()
            .send_control(node, Control::EvictionWarning { deadline_ms })
    }

    /// Abruptly kills `node`: subsequent sends to it are dropped, its own
    /// sends fail, and its blocked `recv` wakes with `Killed`.
    ///
    /// Idempotent; killing an unknown node is a no-op.
    pub fn kill(&self, node: NodeId) {
        let mut nodes = self.inner.nodes.write();
        if let Some(entry) = nodes.get_mut(&node) {
            if !entry.dead {
                entry.dead = true;
                // Wake a blocked recv. The context converts Kill into
                // RecvError::Killed and never exposes it to behaviors.
                let _ = entry.tx.send(Incoming::Control(Control::Kill));
            }
        }
    }

    /// Politely asks `node` to shut down (end-of-job).
    pub fn shutdown(&self, node: NodeId) -> Result<(), SendError> {
        self.handle().send_control(node, Control::Shutdown)
    }

    /// Whether `node` is alive.
    pub fn alive(&self, node: NodeId) -> bool {
        self.inner.is_alive(node)
    }

    /// The reliability class `node` was spawned with, if it exists.
    pub fn class_of(&self, node: NodeId) -> Option<NodeClass> {
        self.inner.nodes.read().get(&node).map(|e| e.class)
    }

    /// Ids of all currently-alive nodes, sorted.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self
            .inner
            .nodes
            .read()
            .iter()
            .filter(|(_, e)| !e.dead)
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        ids
    }

    /// Delivered-message counts per (sender, receiver) pair, sorted.
    ///
    /// Lets tests assert *direction* properties of a protocol — e.g.
    /// that AgileML's backup streams flow from transient ActivePSs
    /// toward reliable BackupPSs only.
    pub fn traffic_matrix(&self) -> Vec<((NodeId, NodeId), u64)> {
        let mut rows: Vec<((NodeId, NodeId), u64)> = self
            .inner
            .traffic
            .read()
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        rows.sort();
        rows
    }

    /// Messages delivered from `from` to `to`.
    pub fn traffic_between(&self, from: NodeId, to: NodeId) -> u64 {
        self.inner
            .traffic
            .read()
            .get(&(from, to))
            .copied()
            .unwrap_or(0)
    }

    /// Aggregate traffic counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            messages: self.inner.messages.load(Ordering::Relaxed),
            dropped: self.inner.dropped.load(Ordering::Relaxed),
        }
    }

    /// Waits for every node thread to finish.
    ///
    /// Callers must arrange for behaviors to terminate (shutdown signals,
    /// kills, or natural completion) before joining, or this will block.
    pub fn join(mut self) {
        for (_, handle) in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    /// Kills every node and then joins all threads — a hard teardown.
    pub fn abort_all(mut self) {
        let ids: Vec<NodeId> = self.inner.nodes.read().keys().copied().collect();
        for id in ids {
            self.kill(id);
        }
        for (_, handle) in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn messages_round_trip_between_nodes() {
        let mut cluster: Cluster<String> = Cluster::new();
        let (done_tx, done_rx) = unbounded();
        let server = cluster.spawn(NodeClass::Reliable, |ctx| {
            if let Ok(Incoming::App(env)) = ctx.recv() {
                let _ = ctx.send(env.from, format!("re:{}", env.msg));
            }
        });
        cluster.spawn(NodeClass::Transient, move |ctx| {
            ctx.send(server, "hello".to_string()).unwrap();
            if let Ok(Incoming::App(env)) = ctx.recv() {
                done_tx.send(env.msg).unwrap();
            }
        });
        let reply = done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reply, "re:hello");
        cluster.join();
    }

    #[test]
    fn kill_makes_node_unreachable_and_wakes_it() {
        let mut cluster: Cluster<u32> = Cluster::new();
        let (obs_tx, obs_rx) = unbounded();
        let victim = cluster.spawn(NodeClass::Transient, move |ctx| {
            // Block forever; the kill must wake us with Killed.
            let err = ctx.recv().unwrap_err();
            obs_tx.send(err).unwrap();
        });
        assert!(cluster.alive(victim));
        cluster.kill(victim);
        assert!(!cluster.alive(victim));
        let err = obs_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(err, crate::RecvError::Killed);
        // Sends to the dead node are dropped with an error.
        assert_eq!(
            cluster.handle().send_as_harness(victim, 1),
            Err(SendError::Unreachable(victim))
        );
        assert_eq!(cluster.stats().dropped, 1);
        cluster.join();
    }

    #[test]
    fn kill_is_idempotent() {
        let mut cluster: Cluster<u32> = Cluster::new();
        let victim = cluster.spawn(NodeClass::Transient, |ctx| {
            let _ = ctx.recv();
        });
        cluster.kill(victim);
        cluster.kill(victim);
        cluster.kill(NodeId(999)); // Unknown node: no-op.
        cluster.join();
    }

    #[test]
    fn revoke_delivers_warning_and_node_keeps_running() {
        let mut cluster: Cluster<u32> = Cluster::new();
        let (obs_tx, obs_rx) = unbounded();
        let node = cluster.spawn(NodeClass::Transient, move |ctx| {
            match ctx.recv() {
                Ok(Incoming::Control(Control::EvictionWarning { deadline_ms })) => {
                    // Still alive: can do a final action.
                    obs_tx.send(deadline_ms).unwrap();
                }
                other => panic!("expected warning, got {other:?}"),
            }
        });
        cluster.revoke(node, 120_000).unwrap();
        assert_eq!(
            obs_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            120_000
        );
        cluster.join();
    }

    #[test]
    fn shutdown_is_observable_as_control() {
        let mut cluster: Cluster<u32> = Cluster::new();
        let (obs_tx, obs_rx) = unbounded();
        let node = cluster.spawn(NodeClass::Reliable, move |ctx| {
            if let Ok(Incoming::Control(Control::Shutdown)) = ctx.recv() {
                obs_tx.send(()).unwrap();
            }
        });
        cluster.shutdown(node).unwrap();
        obs_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        cluster.join();
    }

    #[test]
    fn live_nodes_and_classes_are_tracked() {
        let mut cluster: Cluster<u32> = Cluster::new();
        let a = cluster.spawn(NodeClass::Reliable, |ctx| {
            let _ = ctx.recv();
        });
        let b = cluster.spawn(NodeClass::Transient, |ctx| {
            let _ = ctx.recv();
        });
        assert_eq!(cluster.live_nodes(), vec![a, b]);
        assert_eq!(cluster.class_of(a), Some(NodeClass::Reliable));
        assert_eq!(cluster.class_of(b), Some(NodeClass::Transient));
        cluster.kill(a);
        assert_eq!(cluster.live_nodes(), vec![b]);
        cluster.abort_all();
    }

    #[test]
    fn dead_sender_cannot_send() {
        let mut cluster: Cluster<u32> = Cluster::new();
        let (obs_tx, obs_rx) = unbounded();
        let (gate_tx, gate_rx) = unbounded::<()>();
        let target = cluster.spawn(NodeClass::Reliable, |ctx| {
            let _ = ctx.recv();
        });
        let sender = cluster.spawn(NodeClass::Transient, move |ctx| {
            // Wait until the harness kills us, then try to send.
            gate_rx.recv().unwrap();
            obs_tx.send(ctx.send(target, 9)).unwrap();
        });
        cluster.kill(sender);
        gate_tx.send(()).unwrap();
        let result = obs_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(result, Err(SendError::SelfDead));
        cluster.abort_all();
    }

    #[test]
    fn fault_plan_applies_at_the_cluster_boundary() {
        use crate::fault::FaultPlan;
        let mut cluster: Cluster<u32> = Cluster::new();
        let (done_tx, done_rx) = unbounded();
        let sink = cluster.spawn(NodeClass::Reliable, move |ctx| {
            let mut got = Vec::new();
            while let Ok(Incoming::App(env)) = ctx.recv() {
                got.push(env.msg);
                if env.msg == 99 {
                    done_tx.send(got.clone()).unwrap();
                }
            }
        });
        let harness = NodeId::HARNESS;
        // Delay every harness→sink message: each send releases the
        // previous one, and the flush releases the last.
        cluster.set_faults(FaultPlan::new(5).delay_between(harness, sink, 1.0));
        let h = cluster.handle();
        for i in [1u32, 2, 3] {
            h.send_as_harness(sink, i).unwrap();
        }
        assert_eq!(cluster.fault_stats().delayed, 3);
        assert_eq!(cluster.flush_delayed(), 1);
        cluster.clear_faults();
        h.send_as_harness(sink, 99).unwrap();
        let got = done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, vec![1, 2, 3, 99]);
        cluster.abort_all();
    }

    /// Regression (issue 8): the old `deliver` overwrote the send result
    /// with the *last* routed payload's outcome, so a released stale held
    /// message could leak its failure into an unrelated sender. A sender
    /// whose own message was absorbed (here: delayed) must see `Ok` even
    /// when the held message it releases is undeliverable.
    #[test]
    fn absorbed_send_succeeds_even_if_released_held_message_is_dead() {
        let mut cluster: Cluster<u32> = Cluster::new();
        let victim = cluster.spawn(NodeClass::Transient, |ctx| while ctx.recv().is_ok() {});
        let h = cluster.handle();
        cluster.set_faults(FaultPlan::new(1).delay_between(NodeId::HARNESS, victim, 1.0));
        // First send: held back (absorbed), sender sees Ok.
        assert_eq!(h.send_as_harness(victim, 1), Ok(()));
        cluster.kill(victim);
        // Second send: also delayed (absorbed) — it releases the held
        // first message, whose routing now fails. That failure is the
        // held message's own (counted as a drop), not this sender's.
        let before = cluster.stats().dropped;
        assert_eq!(h.send_as_harness(victim, 2), Ok(()));
        assert_eq!(cluster.stats().dropped, before + 1);
        cluster.join();
    }

    /// Regression (issue 8): success must mean "at least one copy of *my*
    /// message was delivered (or the network absorbed it)". A duplicated
    /// message to a dead target delivers zero copies, so the sender must
    /// see `Unreachable` — and both copies must be counted as drops.
    #[test]
    fn duplicated_send_to_dead_target_reports_unreachable() {
        let mut cluster: Cluster<u32> = Cluster::new();
        let victim = cluster.spawn(NodeClass::Transient, |ctx| while ctx.recv().is_ok() {});
        cluster.set_faults(FaultPlan::new(1).duplicate_between(NodeId::HARNESS, victim, 1.0));
        cluster.kill(victim);
        assert_eq!(
            cluster.handle().send_as_harness(victim, 1),
            Err(SendError::Unreachable(victim))
        );
        assert_eq!(cluster.fault_stats().duplicated, 1);
        assert_eq!(cluster.stats().dropped, 2);
        cluster.join();
    }

    /// Regression (issue 8): replacing an installed fault layer used to
    /// destroy its held (delayed) messages without a trace. `set_faults`
    /// must flush the old layer first, exactly like `clear_faults`.
    #[test]
    fn replacing_fault_layer_flushes_held_messages() {
        let mut cluster: Cluster<u32> = Cluster::new();
        let (done_tx, done_rx) = unbounded();
        let sink = cluster.spawn(NodeClass::Reliable, move |ctx| {
            let mut got = Vec::new();
            while let Ok(Incoming::App(env)) = ctx.recv() {
                got.push(env.msg);
                if env.msg == 99 {
                    done_tx.send(got.clone()).unwrap();
                    break;
                }
            }
        });
        cluster.set_faults(FaultPlan::new(3).delay_between(NodeId::HARNESS, sink, 1.0));
        let h = cluster.handle();
        h.send_as_harness(sink, 1).unwrap();
        assert_eq!(cluster.fault_stats().delayed, 1);
        // Replacing the plan must release the held message, not eat it.
        cluster.set_faults(FaultPlan::new(4));
        h.send_as_harness(sink, 99).unwrap();
        let got = done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, vec![1, 99]);
        cluster.abort_all();
    }

    /// Regression (issue 8): a held message flushed by a layer
    /// replacement whose destination is already dead must be counted in
    /// `NetStats::dropped`, not silently vanish.
    #[test]
    fn replacing_fault_layer_counts_undeliverable_held_as_dropped() {
        let mut cluster: Cluster<u32> = Cluster::new();
        let victim = cluster.spawn(NodeClass::Transient, |ctx| while ctx.recv().is_ok() {});
        cluster.set_faults(FaultPlan::new(5).delay_between(NodeId::HARNESS, victim, 1.0));
        cluster.handle().send_as_harness(victim, 1).unwrap();
        cluster.kill(victim);
        let before = cluster.stats().dropped;
        cluster.set_faults(FaultPlan::new(6));
        assert_eq!(cluster.stats().dropped, before + 1);
        cluster.join();
    }

    /// Pins the documented kill semantic: `recv` reports `Killed`
    /// immediately once the node is dead, discarding messages queued
    /// before the kill — a killed machine loses its mailbox.
    #[test]
    fn recv_after_kill_discards_pre_kill_queued_messages() {
        let mut cluster: Cluster<u32> = Cluster::new();
        let (obs_tx, obs_rx) = unbounded();
        let (gate_tx, gate_rx) = unbounded::<()>();
        let victim = cluster.spawn(NodeClass::Transient, move |ctx| {
            // Hold off receiving until the harness has queued a message
            // and killed us; the queued message must never surface.
            gate_rx.recv().unwrap();
            obs_tx.send(ctx.recv()).unwrap();
        });
        cluster.handle().send_as_harness(victim, 42).unwrap();
        cluster.kill(victim);
        gate_tx.send(()).unwrap();
        let got = obs_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, Err(crate::RecvError::Killed));
        cluster.join();
    }

    /// The synthetic harness id is reserved: no spawned node can ever be
    /// confused with it.
    #[test]
    fn harness_id_is_never_spawned() {
        let cluster: Cluster<u32> = Cluster::new();
        assert!(!cluster.alive(NodeId::HARNESS));
        assert_eq!(cluster.class_of(NodeId::HARNESS), None);
        cluster.join();
    }

    #[test]
    fn stats_count_delivered_messages() {
        let mut cluster: Cluster<u32> = Cluster::new();
        let (done_tx, done_rx) = unbounded();
        let sink = cluster.spawn(NodeClass::Reliable, move |ctx| {
            for _ in 0..10 {
                let _ = ctx.recv();
            }
            done_tx.send(()).unwrap();
        });
        cluster.spawn(NodeClass::Transient, move |ctx| {
            for i in 0..10 {
                ctx.send(sink, i).unwrap();
            }
        });
        done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(cluster.stats().messages, 10);
        cluster.join();
    }
}
