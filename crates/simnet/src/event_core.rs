//! The discrete-event simnet core: one timestamp-ordered queue, nodes as
//! event-handler components.
//!
//! The thread-per-node [`Cluster`](crate::Cluster) is faithful but
//! hopeless at fleet scale: a thousand simulated machines means a
//! thousand OS threads fighting the scheduler. [`SimCluster`] is the
//! DSLab-style alternative that unlocks 1000-node / 1000-job studies: a
//! single driver owning one [`EventQueue`], with every node implemented
//! as a [`SimNode`] component whose `on_message` / `on_control` /
//! `on_timer` handlers run inline when their events pop. A send is not a
//! channel push but a **scheduled delivery event** at `now + link
//! latency`; time advances only by popping the queue, so a whole-fleet
//! what-if simulation costs exactly its event count — no thread spawn,
//! park, or context-switch overhead.
//!
//! # Determinism
//!
//! Everything runs on the caller's thread in timestamp order, with FIFO
//! tie-breaking among equal timestamps (the [`EventQueue`] insertion-
//! order invariant, property-tested in `proteus-simtime`). Two runs of
//! the same scripted workload produce identical event sequences, stats,
//! and traffic matrices — there is no interleaving to get lucky with.
//!
//! # Fault injection at enqueue time
//!
//! The same [`FaultPlan`](crate::FaultPlan) chaos layer the thread
//! cluster uses is applied when a message is **enqueued**, not when it is
//! dispatched: the n-th send on a (sender, receiver) pair consumes the
//! n-th draw of that pair's seeded stream, exactly as on the thread
//! cluster (where delivery runs on the sender's thread). A chaos run is
//! therefore reproducible from the plan seed alone, and fault verdicts
//! are identical across the two cores for the same per-pair send
//! sequence.
//!
//! # Kill semantics
//!
//! [`SimCluster::kill`] pins the same semantic as the thread cluster's
//! [`NodeCtx::recv`](crate::NodeCtx::recv): a killed node never handles
//! another event. Deliveries already scheduled to it are discarded at
//! dispatch and counted in [`NetStats::dropped`] — the event-queue
//! analogue of a killed mailbox losing its queued messages.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use proteus_obs::Recorder;
use proteus_simtime::{EventQueue, SimDuration, SimTime};

use crate::cluster::NetStats;
use crate::fault::{Applied, FaultLayer, FaultPlan, FaultStats};
use crate::message::{Control, SendError};
use crate::node::{NodeClass, NodeId};

/// Identifies one timer a component set for itself; the component picks
/// the value and gets it back in [`SimNode::on_timer`].
pub type TimerId = u64;

/// A node as an event-handler component.
///
/// Handlers run inline on the driver thread when their event pops; they
/// interact with the cluster (sending, timers, introspection) only
/// through the [`SimCtx`] they are handed. Handlers must not block — in
/// a discrete-event world, "waiting" is setting a timer or waiting for
/// the next message.
pub trait SimNode<M> {
    /// Called once, synchronously, when the node is added to the cluster.
    fn on_start(&mut self, _ctx: &mut SimCtx<'_, M>) {}

    /// An application message from `from` arrived.
    fn on_message(&mut self, ctx: &mut SimCtx<'_, M>, from: NodeId, msg: M);

    /// A harness control signal arrived ([`Control::Kill`] is never seen
    /// here — the core retires the node instead, like the thread
    /// cluster's context converting `Kill` into `RecvError::Killed`).
    fn on_control(&mut self, _ctx: &mut SimCtx<'_, M>, _ctrl: Control) {}

    /// A timer this component set via [`SimCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut SimCtx<'_, M>, _timer: TimerId) {}
}

/// Boxed handler closure taking the node's [`SimCtx`] plus an event
/// payload `E` (sender + message, a control, or a timer id).
type Handler<M, E> = Box<dyn FnMut(&mut SimCtx<'_, M>, E)>;

/// Closure-based [`SimNode`] for tests, benches, and simple protocols.
pub struct FnNode<M> {
    on_message: Handler<M, (NodeId, M)>,
    on_control: Option<Handler<M, Control>>,
    on_timer: Option<Handler<M, TimerId>>,
}

impl<M> FnNode<M> {
    /// A component handling application messages with `f` (and ignoring
    /// controls and timers until handlers are attached).
    pub fn new(mut f: impl FnMut(&mut SimCtx<'_, M>, NodeId, M) + 'static) -> Self {
        FnNode {
            on_message: Box::new(move |ctx, (from, msg)| f(ctx, from, msg)),
            on_control: None,
            on_timer: None,
        }
    }

    /// Attaches a control handler; builder style.
    pub fn with_control(mut self, f: impl FnMut(&mut SimCtx<'_, M>, Control) + 'static) -> Self {
        self.on_control = Some(Box::new(f));
        self
    }

    /// Attaches a timer handler; builder style.
    pub fn with_timer(mut self, f: impl FnMut(&mut SimCtx<'_, M>, TimerId) + 'static) -> Self {
        self.on_timer = Some(Box::new(f));
        self
    }
}

impl<M> SimNode<M> for FnNode<M> {
    fn on_message(&mut self, ctx: &mut SimCtx<'_, M>, from: NodeId, msg: M) {
        (self.on_message)(ctx, (from, msg));
    }

    fn on_control(&mut self, ctx: &mut SimCtx<'_, M>, ctrl: Control) {
        if let Some(f) = self.on_control.as_mut() {
            f(ctx, ctrl);
        }
    }

    fn on_timer(&mut self, ctx: &mut SimCtx<'_, M>, timer: TimerId) {
        if let Some(f) = self.on_timer.as_mut() {
            f(ctx, timer);
        }
    }
}

/// One scheduled occurrence in the simulation.
enum SimEvent<M> {
    /// A message crossing the simulated link, due at its delivery instant.
    Deliver { from: NodeId, to: NodeId, msg: M },
    /// A harness control signal due at `to`.
    Control { to: NodeId, ctrl: Control },
    /// A component timer firing.
    Timer { node: NodeId, timer: TimerId },
    /// A deferred harness send, pushed through the fault layer (and the
    /// link) at its fire time.
    Inject { to: NodeId, msg: M },
}

/// Per-node registry metadata (the component itself lives beside the
/// state so handlers can borrow both disjointly).
struct NodeMeta {
    class: NodeClass,
    dead: bool,
}

/// Everything a handler may touch mid-dispatch: clock, queue, registry
/// metadata, fault layer, counters, recorder — the routing core shared
/// by every [`SimCtx`].
struct CoreState<M> {
    now: SimTime,
    queue: EventQueue<SimEvent<M>>,
    meta: HashMap<NodeId, NodeMeta>,
    next_id: u32,
    /// Default one-way link latency applied to every delivery.
    link_latency: SimDuration,
    /// Per-(sender, receiver) latency overrides.
    link_overrides: HashMap<(NodeId, NodeId), SimDuration>,
    faults: Option<FaultLayer<M>>,
    messages: u64,
    dropped: u64,
    /// Delivered-message counts per (sender, receiver) pair; a BTreeMap
    /// so iteration order is deterministic for free.
    traffic: BTreeMap<(NodeId, NodeId), u64>,
    recorder: Option<Arc<Recorder>>,
}

impl<M: Clone> CoreState<M> {
    fn is_alive(&self, node: NodeId) -> bool {
        self.meta.get(&node).is_some_and(|m| !m.dead)
    }

    fn latency(&self, from: NodeId, to: NodeId) -> SimDuration {
        self.link_overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.link_latency)
    }

    /// Pushes one message through the fault layer and schedules the
    /// surviving copies as delivery events at `now + latency`.
    ///
    /// Mirrors [`ClusterInner::deliver`](crate::cluster::ClusterInner):
    /// success iff the message was absorbed by the fault layer or the
    /// destination was alive to schedule at least one copy toward.
    /// Copies aimed at a dead destination are counted as drops
    /// immediately; copies scheduled toward a then-alive destination
    /// that dies before dispatch are counted as drops at dispatch.
    fn enqueue(&mut self, from: NodeId, to: NodeId, msg: M) -> Result<(), SendError> {
        let applied = match &self.faults {
            None => Applied::passthrough(msg),
            Some(layer) => layer.apply(from, to, msg),
        };
        let alive = self.is_alive(to);
        let at = self.now + self.latency(from, to);
        let copies = applied.copies.len() as u64;
        if alive {
            for m in applied.copies {
                self.queue
                    .schedule(at, SimEvent::Deliver { from, to, msg: m });
            }
        } else {
            self.dropped += copies;
        }
        if let Some(m) = applied.released {
            if alive {
                self.queue
                    .schedule(at, SimEvent::Deliver { from, to, msg: m });
            } else {
                self.dropped += 1;
            }
        }
        if alive || applied.absorbed {
            Ok(())
        } else {
            Err(SendError::Unreachable(to))
        }
    }
}

/// The per-dispatch handle a [`SimNode`] interacts with the cluster
/// through — the event-core analogue of [`NodeCtx`](crate::NodeCtx).
pub struct SimCtx<'a, M> {
    id: NodeId,
    state: &'a mut CoreState<M>,
}

impl<M: Clone> SimCtx<'_, M> {
    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's reliability class.
    pub fn class(&self) -> NodeClass {
        self.state
            .meta
            .get(&self.id)
            .map(|m| m.class)
            .unwrap_or(NodeClass::Transient)
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.state.now
    }

    /// Sends an application message to `to`: a delivery event scheduled
    /// at `now + link latency`, after the fault layer has had its say.
    ///
    /// Fails with [`SendError::SelfDead`] if this node has been killed
    /// mid-dispatch and [`SendError::Unreachable`] if the target is
    /// already gone (it may still die before the delivery fires, in
    /// which case the copy is dropped silently — exactly a packet in
    /// flight to a revoked machine).
    pub fn send(&mut self, to: NodeId, msg: M) -> Result<(), SendError> {
        if !self.state.is_alive(self.id) {
            return Err(SendError::SelfDead);
        }
        self.state.enqueue(self.id, to, msg)
    }

    /// Like [`SimCtx::send`] with an extra sender-side delay before the
    /// message enters the link (faults still apply now, at enqueue).
    pub fn send_after(&mut self, delay: SimDuration, to: NodeId, msg: M) -> Result<(), SendError> {
        if !self.state.is_alive(self.id) {
            return Err(SendError::SelfDead);
        }
        let saved = self.state.now;
        self.state.now = saved + delay;
        let result = self.state.enqueue(self.id, to, msg);
        self.state.now = saved;
        result
    }

    /// Schedules [`SimNode::on_timer`] for this node at `now + delay`.
    pub fn set_timer(&mut self, delay: SimDuration, timer: TimerId) {
        let at = self.state.now + delay;
        self.state.queue.schedule(
            at,
            SimEvent::Timer {
                node: self.id,
                timer,
            },
        );
    }

    /// Whether a peer node is currently alive.
    pub fn peer_alive(&self, node: NodeId) -> bool {
        self.state.is_alive(node)
    }

    /// Retires this node cooperatively: no further events are dispatched
    /// to it and subsequent sends toward it count as drops.
    pub fn stop(&mut self) {
        if let Some(m) = self.state.meta.get_mut(&self.id) {
            m.dead = true;
        }
    }
}

/// A discrete-event cluster: the [`SimNode`] components, the shared
/// routing state, and the single timestamp-ordered event queue that
/// drives them.
///
/// # Examples
///
/// ```
/// use proteus_simnet::{FnNode, NodeClass, SimCluster};
/// use proteus_simtime::SimDuration;
///
/// let mut sim: SimCluster<u64> = SimCluster::new();
/// sim.set_link_latency(SimDuration::from_millis(5));
/// let echo = sim.add_node(
///     NodeClass::Reliable,
///     FnNode::new(|ctx, from, msg| {
///         let _ = ctx.send(from, msg * 2);
///     }),
/// );
/// let probe = sim.add_node(
///     NodeClass::Transient,
///     FnNode::new(|_ctx, _from, msg| assert_eq!(msg, 42)),
/// );
/// sim.send_from(probe, echo, 21).unwrap();
/// let end = sim.run_until_idle();
/// assert_eq!(end, proteus_simtime::SimTime::from_millis(10));
/// assert_eq!(sim.stats().messages, 2);
/// ```
pub struct SimCluster<M> {
    state: CoreState<M>,
    components: HashMap<NodeId, Box<dyn SimNode<M>>>,
}

impl<M: Clone> Default for SimCluster<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Clone> SimCluster<M> {
    /// Creates an empty cluster at the simulation epoch with zero link
    /// latency.
    pub fn new() -> Self {
        SimCluster {
            state: CoreState {
                now: SimTime::EPOCH,
                queue: EventQueue::new(),
                meta: HashMap::new(),
                next_id: 0,
                link_latency: SimDuration::ZERO,
                link_overrides: HashMap::new(),
                faults: None,
                messages: 0,
                dropped: 0,
                traffic: BTreeMap::new(),
                recorder: None,
            },
            components: HashMap::new(),
        }
    }

    /// Sets the default one-way link latency applied to every delivery.
    pub fn set_link_latency(&mut self, latency: SimDuration) {
        self.state.link_latency = latency;
    }

    /// Overrides the link latency for messages from `from` to `to`.
    pub fn set_link_latency_between(&mut self, from: NodeId, to: NodeId, latency: SimDuration) {
        self.state.link_overrides.insert((from, to), latency);
    }

    /// Adds a node of the given reliability class, returning its id. The
    /// component's [`SimNode::on_start`] runs synchronously before this
    /// returns (at the current sim instant).
    pub fn add_node(&mut self, class: NodeClass, node: impl SimNode<M> + 'static) -> NodeId {
        // `NodeId::HARNESS` (u32::MAX) is reserved for harness-attributed
        // traffic; an added node must never collide with it.
        assert!(
            self.state.next_id < NodeId::HARNESS.0,
            "simnet event core exhausted the spawnable NodeId space"
        );
        let id = NodeId(self.state.next_id);
        self.state.next_id += 1;
        self.state.meta.insert(id, NodeMeta { class, dead: false });
        let mut node: Box<dyn SimNode<M>> = Box::new(node);
        let mut ctx = SimCtx {
            id,
            state: &mut self.state,
        };
        node.on_start(&mut ctx);
        self.components.insert(id, node);
        id
    }

    /// The current simulated instant (the timestamp of the last
    /// dispatched event, or where [`SimCluster::run_until`] left it).
    pub fn now(&self) -> SimTime {
        self.state.now
    }

    /// Sends an application message on behalf of the harness, attributed
    /// to the reserved [`NodeId::HARNESS`].
    pub fn send_as_harness(&mut self, to: NodeId, msg: M) -> Result<(), SendError> {
        self.state.enqueue(NodeId::HARNESS, to, msg)
    }

    /// Sends an application message attributed to `from` (which must be
    /// alive) — lets a harness script traffic between specific nodes.
    pub fn send_from(&mut self, from: NodeId, to: NodeId, msg: M) -> Result<(), SendError> {
        if !self.state.is_alive(from) {
            return Err(SendError::SelfDead);
        }
        self.state.enqueue(from, to, msg)
    }

    /// Schedules a harness send to be pushed through the fault layer at
    /// the absolute instant `at` (clamped to no earlier than now).
    pub fn schedule_harness_send(&mut self, at: SimTime, to: NodeId, msg: M) {
        self.state
            .queue
            .schedule(at.max(self.state.now), SimEvent::Inject { to, msg });
    }

    /// Delivers a control signal to `to` at the current instant.
    pub fn send_control(&mut self, to: NodeId, ctrl: Control) -> Result<(), SendError> {
        if !self.state.is_alive(to) {
            return Err(SendError::Unreachable(to));
        }
        self.state
            .queue
            .schedule(self.state.now, SimEvent::Control { to, ctrl });
        Ok(())
    }

    /// Schedules a control signal for the absolute instant `at` (clamped
    /// to no earlier than now) — the chaos-scripting primitive:
    /// `schedule_control(t, n, Control::Kill)` is a scripted crash,
    /// `Control::EvictionWarning` a scripted two-minute notice.
    pub fn schedule_control(&mut self, at: SimTime, to: NodeId, ctrl: Control) {
        self.state
            .queue
            .schedule(at.max(self.state.now), SimEvent::Control { to, ctrl });
    }

    /// Delivers an eviction warning to `node` at the current instant.
    pub fn revoke(&mut self, node: NodeId, deadline_ms: u64) -> Result<(), SendError> {
        self.send_control(node, Control::EvictionWarning { deadline_ms })
    }

    /// Politely asks `node` to shut down (end-of-job).
    pub fn shutdown(&mut self, node: NodeId) -> Result<(), SendError> {
        self.send_control(node, Control::Shutdown)
    }

    /// Abruptly kills `node`, effective immediately: it handles no
    /// further events, deliveries already in flight toward it are
    /// discarded at dispatch (counted in [`NetStats::dropped`]), and its
    /// own sends fail — the same semantic the thread cluster pins.
    ///
    /// Idempotent; killing an unknown node is a no-op.
    pub fn kill(&mut self, node: NodeId) {
        if let Some(m) = self.state.meta.get_mut(&node) {
            m.dead = true;
        }
    }

    /// Installs (or replaces) a message-[`FaultPlan`], applied at
    /// enqueue time to every subsequent send. A replaced layer is
    /// flushed first so its held (delayed) messages are scheduled for
    /// delivery rather than silently destroyed.
    pub fn set_faults(&mut self, plan: FaultPlan<M>) {
        self.flush_delayed();
        let obs = self.state.recorder.clone();
        self.state.faults = Some(FaultLayer::new(plan, obs));
    }

    /// Removes the fault layer, flushing any held-back messages first.
    pub fn clear_faults(&mut self) {
        self.flush_delayed();
        self.state.faults = None;
    }

    /// Schedules every delayed (held-back) message for delivery at
    /// `now + latency`; returns how many were released.
    pub fn flush_delayed(&mut self) -> usize {
        let Some(layer) = self.state.faults.as_ref() else {
            return 0;
        };
        let held = layer.drain_held();
        let n = held.len();
        for (from, to, msg) in held {
            let at = self.state.now + self.state.latency(from, to);
            if self.state.is_alive(to) {
                self.state
                    .queue
                    .schedule(at, SimEvent::Deliver { from, to, msg });
            } else {
                self.state.dropped += 1;
            }
        }
        n
    }

    /// Counters of message faults injected so far (zeros if no plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.state
            .faults
            .as_ref()
            .map(|l| l.stats())
            .unwrap_or_default()
    }

    /// Attaches an observability recorder: its sim clock is driven to
    /// each event's timestamp before dispatch (so component-recorded
    /// events are sim-time stamped), and the fault layer mirrors
    /// injected faults into its `simnet.msg.*` counters.
    pub fn set_recorder(&mut self, rec: Arc<Recorder>) {
        rec.set_now(self.state.now);
        if let Some(layer) = self.state.faults.as_ref() {
            layer.set_recorder(Arc::clone(&rec));
        }
        self.state.recorder = Some(rec);
    }

    /// Whether `node` is alive (added and not killed or stopped).
    pub fn alive(&self, node: NodeId) -> bool {
        self.state.is_alive(node)
    }

    /// The reliability class `node` was added with, if it exists.
    pub fn class_of(&self, node: NodeId) -> Option<NodeClass> {
        self.state.meta.get(&node).map(|m| m.class)
    }

    /// Ids of all currently-alive nodes, sorted.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self
            .state
            .meta
            .iter()
            .filter(|(_, m)| !m.dead)
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        ids
    }

    /// Aggregate traffic counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            messages: self.state.messages,
            dropped: self.state.dropped,
        }
    }

    /// Delivered-message counts per (sender, receiver) pair, sorted.
    pub fn traffic_matrix(&self) -> Vec<((NodeId, NodeId), u64)> {
        self.state.traffic.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Messages delivered from `from` to `to`.
    pub fn traffic_between(&self, from: NodeId, to: NodeId) -> u64 {
        self.state.traffic.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Number of events still pending in the queue.
    pub fn pending_events(&self) -> usize {
        self.state.queue.len()
    }

    /// Dispatches the earliest pending event; returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        match self.state.queue.pop() {
            Some((at, ev)) => {
                self.dispatch(at, ev);
                true
            }
            None => false,
        }
    }

    /// Runs until no events remain, returning the final sim instant.
    pub fn run_until_idle(&mut self) -> SimTime {
        while self.step() {}
        self.state.now
    }

    /// Dispatches every event due at or before `t`, then advances the
    /// clock to exactly `t` (if it is not already past it).
    pub fn run_until(&mut self, t: SimTime) -> SimTime {
        while let Some((at, ev)) = self.state.queue.pop_due(t) {
            self.dispatch(at, ev);
        }
        self.state.now = self.state.now.max(t);
        if let Some(rec) = self.state.recorder.as_deref() {
            rec.set_now(self.state.now);
        }
        self.state.now
    }

    fn dispatch(&mut self, at: SimTime, ev: SimEvent<M>) {
        self.state.now = at;
        if let Some(rec) = self.state.recorder.as_deref() {
            rec.set_now(at);
        }
        match ev {
            SimEvent::Deliver { from, to, msg } => {
                if !self.state.is_alive(to) {
                    // The destination died after this delivery was
                    // scheduled: the pinned kill semantic — in-flight
                    // messages to a killed node are lost, and counted.
                    self.state.dropped += 1;
                    return;
                }
                self.state.messages += 1;
                *self.state.traffic.entry((from, to)).or_insert(0) += 1;
                self.with_component(to, |node, ctx| node.on_message(ctx, from, msg));
            }
            SimEvent::Control { to, ctrl } => {
                if !self.state.is_alive(to) {
                    return;
                }
                if ctrl == Control::Kill {
                    self.kill(to);
                    return;
                }
                self.with_component(to, |node, ctx| node.on_control(ctx, ctrl));
            }
            SimEvent::Timer { node, timer } => {
                if !self.state.is_alive(node) {
                    return;
                }
                self.with_component(node, |n, ctx| n.on_timer(ctx, timer));
            }
            SimEvent::Inject { to, msg } => {
                let _ = self.state.enqueue(NodeId::HARNESS, to, msg);
            }
        }
    }

    /// Runs `f` with `id`'s component temporarily removed from the map so
    /// the handler can mutably borrow both itself and the core state.
    fn with_component(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut dyn SimNode<M>, &mut SimCtx<'_, M>),
    ) {
        if let Some(mut node) = self.components.remove(&id) {
            let mut ctx = SimCtx {
                id,
                state: &mut self.state,
            };
            f(node.as_mut(), &mut ctx);
            self.components.insert(id, node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip_advances_sim_time() {
        let mut sim: SimCluster<u32> = SimCluster::new();
        sim.set_link_latency(SimDuration::from_millis(3));
        let echo = sim.add_node(
            NodeClass::Reliable,
            FnNode::new(|ctx, from, msg| {
                let _ = ctx.send(from, msg + 1);
            }),
        );
        let sink = sim.add_node(NodeClass::Transient, FnNode::new(|_, _, _| {}));
        sim.send_from(sink, echo, 1).unwrap();
        assert_eq!(sim.run_until_idle(), SimTime::from_millis(6));
        assert_eq!(sim.stats().messages, 2);
        assert_eq!(sim.traffic_between(echo, sink), 1);
    }

    #[test]
    fn same_timestamp_events_dispatch_fifo() {
        let mut sim: SimCluster<u32> = SimCluster::new();
        let log: std::rc::Rc<std::cell::RefCell<Vec<u32>>> = Default::default();
        let sink_log = std::rc::Rc::clone(&log);
        let sink = sim.add_node(
            NodeClass::Reliable,
            FnNode::new(move |_, _, msg| sink_log.borrow_mut().push(msg)),
        );
        for i in 0..50 {
            sim.send_as_harness(sink, i).unwrap();
        }
        sim.run_until_idle();
        assert_eq!(*log.borrow(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn killed_node_drops_in_flight_deliveries() {
        let mut sim: SimCluster<u32> = SimCluster::new();
        sim.set_link_latency(SimDuration::from_millis(10));
        let victim = sim.add_node(
            NodeClass::Transient,
            FnNode::new(|_, _, _| panic!("must never handle a message")),
        );
        sim.send_as_harness(victim, 7).unwrap(); // in flight for 10ms
        sim.kill(victim);
        sim.run_until_idle();
        assert_eq!(sim.stats().messages, 0);
        assert_eq!(sim.stats().dropped, 1);
        // Sends to the dead node now fail at enqueue.
        assert_eq!(
            sim.send_as_harness(victim, 8),
            Err(SendError::Unreachable(victim))
        );
        assert_eq!(sim.stats().dropped, 2);
    }

    #[test]
    fn timers_fire_at_their_instant() {
        let mut sim: SimCluster<u32> = SimCluster::new();
        let fired: std::rc::Rc<std::cell::RefCell<Vec<(u64, u64)>>> = Default::default();
        let f = std::rc::Rc::clone(&fired);
        struct Ticker {
            fired: std::rc::Rc<std::cell::RefCell<Vec<(u64, u64)>>>,
        }
        impl SimNode<u32> for Ticker {
            fn on_start(&mut self, ctx: &mut SimCtx<'_, u32>) {
                ctx.set_timer(SimDuration::from_millis(5), 1);
                ctx.set_timer(SimDuration::from_millis(2), 2);
            }
            fn on_message(&mut self, _: &mut SimCtx<'_, u32>, _: NodeId, _: u32) {}
            fn on_timer(&mut self, ctx: &mut SimCtx<'_, u32>, timer: TimerId) {
                self.fired.borrow_mut().push((ctx.now().as_millis(), timer));
            }
        }
        sim.add_node(NodeClass::Reliable, Ticker { fired: f });
        sim.run_until_idle();
        assert_eq!(*fired.borrow(), vec![(2, 2), (5, 1)]);
    }

    #[test]
    fn harness_id_is_reserved() {
        let mut sim: SimCluster<u32> = SimCluster::new();
        let sink = sim.add_node(NodeClass::Reliable, FnNode::new(|_, _, _| {}));
        assert_ne!(sink, NodeId::HARNESS);
        assert!(!sim.alive(NodeId::HARNESS));
        sim.send_as_harness(sink, 1).unwrap();
        sim.run_until_idle();
        assert_eq!(sim.traffic_between(NodeId::HARNESS, sink), 1);
    }

    #[test]
    fn run_until_stops_at_the_requested_instant() {
        let mut sim: SimCluster<u32> = SimCluster::new();
        sim.set_link_latency(SimDuration::from_millis(10));
        let sink = sim.add_node(NodeClass::Reliable, FnNode::new(|_, _, _| {}));
        sim.send_as_harness(sink, 1).unwrap();
        assert_eq!(
            sim.run_until(SimTime::from_millis(4)),
            SimTime::from_millis(4)
        );
        assert_eq!(sim.stats().messages, 0);
        assert_eq!(
            sim.run_until(SimTime::from_millis(20)),
            SimTime::from_millis(20)
        );
        assert_eq!(sim.stats().messages, 1);
    }
}
