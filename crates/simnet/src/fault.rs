//! Seed-deterministic message-fault injection at the cluster boundary.
//!
//! A [`FaultPlan`] describes which (sender, receiver) pairs misbehave and
//! how often: messages can be **dropped** (silently eaten by the network —
//! the sender still sees success), **duplicated** (delivered twice, like a
//! retransmit racing its ack), or **delayed** (held back and released
//! after the *next* message on the same pair, producing a one-message
//! reorder). Node-level faults — crash-without-warning, warning-with-no-
//! eviction, warning-then-crash-before-drain, eviction storms — are
//! scripted directly through [`Cluster::revoke`](crate::Cluster::revoke)
//! and [`Cluster::kill`](crate::Cluster::kill); this module only covers
//! the message plane.
//!
//! # Determinism
//!
//! Each (sender, receiver) pair gets its own SplitMix64 stream seeded from
//! `plan.seed` and the two node ids. Because simnet delivery runs on the
//! *sender's* thread and per-pair message order is FIFO, the n-th message
//! on a pair always consumes the n-th random draw of that pair's stream —
//! so the set of dropped/duplicated/delayed messages is a pure function of
//! `(plan, per-pair message sequence)` no matter how threads interleave
//! across pairs. A chaos failure is therefore reproducible from the plan
//! seed alone, given a deterministic protocol above.
//!
//! # Delay without deadlock
//!
//! A held message is released when the next message on its pair arrives.
//! If the held message was the *last* traffic on the pair (e.g. the
//! `ClockDone` the whole barrier is waiting on), nothing would ever flush
//! it — so drivers call
//! [`ClusterHandle::flush_delayed`](crate::ClusterHandle::flush_delayed)
//! before (or while) blocking on progress.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use proteus_obs::Recorder;

use crate::node::NodeId;

/// Metrics-registry counter mirroring [`FaultStats::dropped`]. Unlike
/// the per-layer atomics, recorder counters survive
/// [`Cluster::set_faults`](crate::Cluster::set_faults) replacing the
/// layer mid-run, so chaos totals are never silently lost.
pub const OBS_MSG_DROPPED: &str = "simnet.msg.dropped";
/// Metrics-registry counter mirroring [`FaultStats::duplicated`].
pub const OBS_MSG_DUPLICATED: &str = "simnet.msg.duplicated";
/// Metrics-registry counter mirroring [`FaultStats::delayed`].
pub const OBS_MSG_DELAYED: &str = "simnet.msg.delayed";

/// Predicate selecting which payloads a rule applies to.
pub type MsgFilter<M> = Arc<dyn Fn(&M) -> bool + Send + Sync>;

/// One fault rule: probabilities applied to messages on matching pairs.
///
/// `from`/`to` of `None` are wildcards. Probabilities are cumulative per
/// message: a single uniform draw picks drop, then duplicate, then delay
/// (so `drop + duplicate + delay` must be ≤ 1). The first matching rule
/// wins; non-matching traffic is untouched and consumes no randomness.
#[derive(Clone)]
pub struct FaultRule<M> {
    /// Sender this rule applies to (`None` = any).
    pub from: Option<NodeId>,
    /// Receiver this rule applies to (`None` = any).
    pub to: Option<NodeId>,
    /// Probability a matching message is silently dropped.
    pub drop: f64,
    /// Probability a matching message is delivered twice.
    pub duplicate: f64,
    /// Probability a matching message is held back one message (reorder).
    pub delay: f64,
    /// Optional payload predicate; `None` matches every payload.
    pub filter: Option<MsgFilter<M>>,
}

impl<M> FaultRule<M> {
    fn matches(&self, from: NodeId, to: NodeId, msg: &M) -> bool {
        self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
            && self.filter.as_ref().is_none_or(|p| p(msg))
    }
}

impl<M> std::fmt::Debug for FaultRule<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultRule")
            .field("from", &self.from)
            .field("to", &self.to)
            .field("drop", &self.drop)
            .field("duplicate", &self.duplicate)
            .field("delay", &self.delay)
            .field("filtered", &self.filter.is_some())
            .finish()
    }
}

/// A seeded catalogue of message-fault rules for one run.
#[derive(Clone, Debug)]
pub struct FaultPlan<M> {
    /// Root seed; every per-pair stream derives from it.
    pub seed: u64,
    /// Rules, first match wins.
    pub rules: Vec<FaultRule<M>>,
}

impl<M> FaultPlan<M> {
    /// An empty plan (no message faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule; builder style.
    pub fn with_rule(mut self, rule: FaultRule<M>) -> Self {
        self.rules.push(rule);
        self
    }

    /// Drops messages from `from` to `to` with probability `p`.
    pub fn drop_between(self, from: NodeId, to: NodeId, p: f64) -> Self {
        self.with_rule(FaultRule {
            from: Some(from),
            to: Some(to),
            drop: p,
            duplicate: 0.0,
            delay: 0.0,
            filter: None,
        })
    }

    /// Duplicates messages from `from` to `to` with probability `p`.
    pub fn duplicate_between(self, from: NodeId, to: NodeId, p: f64) -> Self {
        self.with_rule(FaultRule {
            from: Some(from),
            to: Some(to),
            drop: 0.0,
            duplicate: p,
            delay: 0.0,
            filter: None,
        })
    }

    /// Delays (reorders by one) messages from `from` to `to` with
    /// probability `p`.
    pub fn delay_between(self, from: NodeId, to: NodeId, p: f64) -> Self {
        self.with_rule(FaultRule {
            from: Some(from),
            to: Some(to),
            drop: 0.0,
            duplicate: 0.0,
            delay: p,
            filter: None,
        })
    }
}

/// Counters of faults actually injected so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Messages silently dropped.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages held back for a one-message reorder.
    pub delayed: u64,
}

/// SplitMix64 — tiny, seedable, and good enough for fault coin flips.
#[derive(Clone, Copy, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// What the fault layer decided to do with one message.
enum Verdict {
    Deliver,
    Drop,
    Duplicate,
    Delay,
}

/// Outcome of pushing one message through the fault layer.
///
/// Distinguishes the *current* message's copies from a previously-held
/// message released by this traffic: the sender's result must reflect
/// only its own message (success iff it was absorbed by the network or
/// at least one copy was delivered), never the fate of a stale held
/// message that happened to ride along.
#[derive(Debug, PartialEq)]
pub(crate) struct Applied<M> {
    /// Copies of the current message to deliver now (empty when the
    /// message was dropped or held back).
    pub(crate) copies: Vec<M>,
    /// The current message was absorbed (fault-dropped or held back):
    /// the network ate it, so the sender must see success.
    pub(crate) absorbed: bool,
    /// A previously-held message on the same pair released by this
    /// traffic, delivered after the current copies — the one-message
    /// reorder a delay fault produces.
    pub(crate) released: Option<M>,
}

impl<M> Applied<M> {
    /// An untouched message: one copy, nothing absorbed or released.
    pub(crate) fn passthrough(msg: M) -> Self {
        Applied {
            copies: vec![msg],
            absorbed: false,
            released: None,
        }
    }
}

/// Per-(sender, receiver) stream state.
struct PairState<M> {
    rng: SplitMix64,
    /// At most one held-back message per pair, released on the pair's
    /// next traffic or by an explicit flush.
    held: Option<M>,
}

/// The installed fault layer: plan + per-pair streams + counters.
pub(crate) struct FaultLayer<M> {
    plan: FaultPlan<M>,
    pairs: Mutex<HashMap<(NodeId, NodeId), PairState<M>>>,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    /// Mirror sink: every injected fault also bumps a persistent
    /// recorder counter (`simnet.msg.*`) so totals survive layer
    /// replacement. Purely additive — never read back by the layer.
    obs: RwLock<Option<Arc<Recorder>>>,
}

impl<M: Clone> FaultLayer<M> {
    pub(crate) fn new(plan: FaultPlan<M>, obs: Option<Arc<Recorder>>) -> Self {
        FaultLayer {
            plan,
            pairs: Mutex::new(HashMap::new()),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            obs: RwLock::new(obs),
        }
    }

    /// Attaches (or replaces) the mirror recorder after construction —
    /// drivers often install fault plans before observability.
    pub(crate) fn set_recorder(&self, rec: Arc<Recorder>) {
        *self.obs.write() = Some(rec);
    }

    /// Bumps the persistent mirror counter for one injected fault.
    fn mirror(&self, name: &'static str) {
        if let Some(rec) = self.obs.read().as_deref() {
            rec.counter_add(name, 1);
        }
    }

    pub(crate) fn stats(&self) -> FaultStats {
        FaultStats {
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
        }
    }

    /// Applies the plan to one message, returning what to deliver *now*:
    /// the current message's copies (empty when it was absorbed) plus any
    /// previously-held message this traffic releases.
    pub(crate) fn apply(&self, from: NodeId, to: NodeId, msg: M) -> Applied<M> {
        let rule = match self.plan.rules.iter().find(|r| r.matches(from, to, &msg)) {
            Some(r) => r,
            // Untouched traffic still flushes anything held on its pair so
            // a delayed message is reordered by exactly one message.
            None => {
                return Applied {
                    copies: vec![msg],
                    absorbed: false,
                    released: self.take_held(from, to),
                };
            }
        };
        let (drop_p, dup_p, delay_p) = (rule.drop, rule.duplicate, rule.delay);
        let mut pairs = self.pairs.lock();
        let pair = pairs.entry((from, to)).or_insert_with(|| PairState {
            rng: SplitMix64(
                self.plan.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ ((from.0 as u64) << 32 | to.0 as u64),
            ),
            held: None,
        });
        let u = pair.rng.next_f64();
        let verdict = if u < drop_p {
            Verdict::Drop
        } else if u < drop_p + dup_p {
            Verdict::Duplicate
        } else if u < drop_p + dup_p + delay_p {
            Verdict::Delay
        } else {
            Verdict::Deliver
        };
        match verdict {
            Verdict::Deliver => Applied {
                copies: vec![msg],
                absorbed: false,
                released: pair.held.take(),
            },
            Verdict::Drop => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                self.mirror(OBS_MSG_DROPPED);
                Applied {
                    copies: Vec::new(),
                    absorbed: true,
                    released: pair.held.take(),
                }
            }
            Verdict::Duplicate => {
                self.duplicated.fetch_add(1, Ordering::Relaxed);
                self.mirror(OBS_MSG_DUPLICATED);
                Applied {
                    copies: vec![msg.clone(), msg],
                    absorbed: false,
                    released: pair.held.take(),
                }
            }
            Verdict::Delay => {
                self.delayed.fetch_add(1, Ordering::Relaxed);
                self.mirror(OBS_MSG_DELAYED);
                // Release anything already held first so at most one
                // message per pair is ever in flight "late".
                let released = pair.held.take();
                pair.held = Some(msg);
                Applied {
                    copies: Vec::new(),
                    absorbed: true,
                    released,
                }
            }
        }
    }

    fn take_held(&self, from: NodeId, to: NodeId) -> Option<M> {
        self.pairs
            .lock()
            .get_mut(&(from, to))
            .and_then(|p| p.held.take())
    }

    /// Drains every held-back message, returning them with their pair so
    /// the cluster can deliver them directly (bypassing re-injection).
    pub(crate) fn drain_held(&self) -> Vec<(NodeId, NodeId, M)> {
        let mut pairs = self.pairs.lock();
        let mut out: Vec<(NodeId, NodeId, M)> = pairs
            .iter_mut()
            .filter_map(|(&(f, t), p)| p.held.take().map(|m| (f, t, m)))
            .collect();
        // Deterministic flush order.
        out.sort_by_key(|(f, t, _)| (*f, *t));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl<M: Clone> Applied<M> {
        /// Delivery order the cluster would route: current copies, then
        /// any released held message.
        fn in_order(&self) -> Vec<M> {
            let mut out = self.copies.clone();
            out.extend(self.released.clone());
            out
        }
    }

    fn plan_all(seed: u64, drop: f64, dup: f64, delay: f64) -> FaultPlan<u32> {
        FaultPlan::new(seed).with_rule(FaultRule {
            from: None,
            to: None,
            drop,
            duplicate: dup,
            delay,
            filter: None,
        })
    }

    #[test]
    fn same_seed_same_verdicts() {
        let a = FaultLayer::new(plan_all(42, 0.3, 0.3, 0.3), None);
        let b = FaultLayer::new(plan_all(42, 0.3, 0.3, 0.3), None);
        for i in 0..200u32 {
            assert_eq!(
                a.apply(NodeId(1), NodeId(2), i).in_order(),
                b.apply(NodeId(1), NodeId(2), i).in_order()
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultLayer::new(plan_all(1, 0.5, 0.0, 0.0), None);
        let b = FaultLayer::new(plan_all(2, 0.5, 0.0, 0.0), None);
        let va: Vec<_> = (0..100u32)
            .map(|i| a.apply(NodeId(1), NodeId(2), i).in_order())
            .collect();
        let vb: Vec<_> = (0..100u32)
            .map(|i| b.apply(NodeId(1), NodeId(2), i).in_order())
            .collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn pairs_are_independent_streams() {
        // Interleaving traffic on another pair must not perturb the
        // verdicts on this one.
        let a = FaultLayer::new(plan_all(7, 0.4, 0.2, 0.2), None);
        let b = FaultLayer::new(plan_all(7, 0.4, 0.2, 0.2), None);
        let mut va = Vec::new();
        let mut vb = Vec::new();
        for i in 0..100u32 {
            va.push(a.apply(NodeId(1), NodeId(2), i).in_order());
            a.apply(NodeId(3), NodeId(4), i); // extra traffic
            vb.push(b.apply(NodeId(1), NodeId(2), i).in_order());
        }
        assert_eq!(va, vb);
    }

    #[test]
    fn drop_absorbs_the_message() {
        let layer = FaultLayer::new(plan_all(0, 1.0, 0.0, 0.0), None);
        let applied = layer.apply(NodeId(1), NodeId(2), 9);
        assert!(applied.copies.is_empty());
        assert!(applied.absorbed);
        assert_eq!(layer.stats().dropped, 1);
    }

    #[test]
    fn duplicate_delivers_twice() {
        let layer = FaultLayer::new(plan_all(0, 0.0, 1.0, 0.0), None);
        let applied = layer.apply(NodeId(1), NodeId(2), 9);
        assert_eq!(applied.copies, vec![9, 9]);
        assert!(!applied.absorbed);
        assert_eq!(layer.stats().duplicated, 1);
    }

    #[test]
    fn delay_reorders_by_one_message() {
        // First message held; second released before it — a reorder.
        let plan = FaultPlan::new(0).with_rule(FaultRule {
            from: None,
            to: None,
            drop: 0.0,
            duplicate: 0.0,
            delay: 1.0,
            filter: None,
        });
        let layer = FaultLayer::new(plan, None);
        let first = layer.apply(NodeId(1), NodeId(2), 1);
        assert!(first.copies.is_empty() && first.absorbed);
        // Second message is also "delayed": releases the first, holds self.
        let second = layer.apply(NodeId(1), NodeId(2), 2);
        assert!(second.copies.is_empty() && second.absorbed);
        assert_eq!(second.released, Some(1));
        assert_eq!(layer.drain_held(), vec![(NodeId(1), NodeId(2), 2)]);
        assert_eq!(layer.drain_held(), vec![]);
        assert_eq!(layer.stats().delayed, 2);
    }

    #[test]
    fn filter_restricts_rule_to_matching_payloads() {
        let plan = FaultPlan::new(0).with_rule(FaultRule {
            from: None,
            to: None,
            drop: 1.0,
            duplicate: 0.0,
            delay: 0.0,
            filter: Some(Arc::new(|m: &u32| m.is_multiple_of(2))),
        });
        let layer = FaultLayer::new(plan, None);
        assert!(layer.apply(NodeId(1), NodeId(2), 4).absorbed); // dropped
        assert_eq!(layer.apply(NodeId(1), NodeId(2), 5).in_order(), vec![5]); // untouched
    }

    #[test]
    fn wildcard_and_specific_pair_matching() {
        let plan = FaultPlan::new(0).drop_between(NodeId(1), NodeId(2), 1.0);
        let layer = FaultLayer::new(plan, None);
        assert!(layer.apply(NodeId(1), NodeId(2), 1).absorbed);
        assert_eq!(layer.apply(NodeId(2), NodeId(1), 1).in_order(), vec![1]);
        assert_eq!(layer.apply(NodeId(1), NodeId(3), 1).in_order(), vec![1]);
    }
}
