//! An in-process message-passing cluster for exercising distributed
//! protocols.
//!
//! AgileML (the paper's elastic parameter-server framework) is a
//! distributed system: workers, parameter servers, backups, and an
//! elasticity controller exchanging messages over a network, with machines
//! appearing and disappearing as the spot market moves. This crate
//! provides the substrate those components run on in this reproduction:
//!
//! * every simulated machine is a [`NodeId`] with a mailbox and its own OS
//!   thread running a user-supplied behavior;
//! * nodes exchange typed messages through [`NodeCtx::send`] /
//!   [`NodeCtx::recv`];
//! * the harness can **revoke** a node (deliver an eviction warning, like
//!   EC2's two-minute notice) or **kill** it abruptly (a failure: the
//!   mailbox is torn down and in-flight messages are lost);
//! * per-node traffic counters support asserting network behavior in
//!   tests (e.g. that backup streams flow reliable-ward only).
//!
//! Two execution cores share the same routing, chaos, and accounting
//! semantics:
//!
//! * the **thread-per-node** [`Cluster`] — every node is an OS thread
//!   with a blocking mailbox; faithful to real concurrency, fine for
//!   ~10–100 nodes, and the substrate the AgileML suites run on today;
//! * the **discrete-event** [`SimCluster`] — one timestamp-ordered
//!   [`proteus_simtime::EventQueue`] drives [`SimNode`] components via
//!   `on_message` / `on_control` / `on_timer` handlers, with link
//!   latency as scheduled delivery events. This is the fleet-scale core:
//!   1000-node chaos sweeps cost their event count, not a thousand OS
//!   threads.
//!
//! Determinism note: under the thread core, threads interleave freely, so
//! *message order between different senders* is nondeterministic exactly
//! as on a real network; protocol tests must assert convergence
//! properties, not exact schedules. The event core is fully
//! deterministic: same script, same event sequence, byte-identical obs.

// Fault- and teardown-reachable paths must return typed errors; any
// retained expect must document a real invariant at its use site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cluster;
pub mod event_core;
pub mod fault;
pub mod message;
pub mod node;

pub use cluster::{Cluster, ClusterHandle, NetStats};
pub use event_core::{FnNode, SimCluster, SimCtx, SimNode, TimerId};
pub use fault::{
    FaultPlan, FaultRule, FaultStats, MsgFilter, OBS_MSG_DELAYED, OBS_MSG_DROPPED,
    OBS_MSG_DUPLICATED,
};
pub use message::{Control, Envelope, Incoming, RecvError, SendError};
pub use node::{NodeClass, NodeCtx, NodeId};
