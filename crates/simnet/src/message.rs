//! Message envelopes, control signals, and channel error types.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::node::NodeId;

/// An application message together with its sender.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Originating node.
    pub from: NodeId,
    /// Payload.
    pub msg: M,
}

/// Control signals injected by the harness (never by peer nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Control {
    /// The provider announced this node will be revoked — the analogue of
    /// EC2's two-minute warning. `deadline_ms` is the wall-clock budget
    /// (in the harness's time base) the node has to drain state.
    EvictionWarning {
        /// Remaining milliseconds before forced termination.
        deadline_ms: u64,
    },
    /// Cooperative shutdown request (end of job).
    Shutdown,
    /// Abrupt termination. Behaviors never observe this variant directly:
    /// the context converts it into [`RecvError::Killed`].
    Kill,
}

/// What a node receives: either a peer's message or a control signal.
#[derive(Debug, Clone, PartialEq)]
pub enum Incoming<M> {
    /// Application traffic.
    App(Envelope<M>),
    /// A harness-injected control signal.
    Control(Control),
}

/// Failures when sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The destination node does not exist or has been killed/revoked.
    Unreachable(NodeId),
    /// The sending node itself has been killed; the message was dropped.
    SelfDead,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Unreachable(n) => write!(f, "destination {n} unreachable"),
            SendError::SelfDead => write!(f, "sending node has been killed"),
        }
    }
}

impl std::error::Error for SendError {}

/// Failures when receiving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// This node has been killed.
    Killed,
    /// All senders are gone (cluster shut down).
    Disconnected,
    /// `recv_timeout` elapsed.
    Timeout,
    /// `try_recv` found nothing pending.
    Empty,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Killed => write!(f, "node killed"),
            RecvError::Disconnected => write!(f, "mailbox disconnected"),
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Empty => write!(f, "mailbox empty"),
        }
    }
}

impl std::error::Error for RecvError {}
