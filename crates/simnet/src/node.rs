//! Node identity, reliability class, and the per-node execution context.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterInner;
use crate::message::{Control, Incoming, RecvError, SendError};

/// Identifies one simulated machine in a [`Cluster`](crate::Cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The reserved synthetic id harness-originated traffic is attributed
    /// to (see [`ClusterHandle::send_as_harness`]
    /// [`crate::ClusterHandle::send_as_harness`]). Never allocated by
    /// [`Cluster::spawn`](crate::Cluster::spawn) or
    /// [`SimCluster::add_node`](crate::SimCluster::add_node), so a harness
    /// message can never be mistaken for (or collide with) a real node's.
    pub const HARNESS: NodeId = NodeId(u32::MAX);
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Reliability tier of a machine — the paper's central distinction.
///
/// Reliable machines (EC2 on-demand) are never revoked by the provider;
/// transient machines (spot) can be evicted at any time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeClass {
    /// Non-transient, e.g. an on-demand instance.
    Reliable,
    /// Revocable, e.g. a spot instance.
    Transient,
}

impl NodeClass {
    /// Whether this is the reliable tier.
    pub fn is_reliable(self) -> bool {
        matches!(self, NodeClass::Reliable)
    }
}

/// The execution context handed to a node's behavior closure.
///
/// All interaction with the rest of the cluster flows through this handle:
/// sending, receiving (application messages and control signals are
/// multiplexed into [`Incoming`]), and introspecting identity.
pub struct NodeCtx<M: Send + Clone + 'static> {
    pub(crate) id: NodeId,
    pub(crate) class: NodeClass,
    pub(crate) inner: Arc<ClusterInner<M>>,
    pub(crate) rx: crossbeam::channel::Receiver<Incoming<M>>,
}

impl<M: Send + Clone + 'static> NodeCtx<M> {
    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's reliability class.
    pub fn class(&self) -> NodeClass {
        self.class
    }

    /// Sends an application message to `to`.
    ///
    /// Fails with [`SendError::SelfDead`] if this node has been killed and
    /// with [`SendError::Unreachable`] if the target is gone — mirroring a
    /// TCP connection reset to a revoked machine.
    pub fn send(&self, to: NodeId, msg: M) -> Result<(), SendError> {
        if self.inner.is_dead(self.id) {
            return Err(SendError::SelfDead);
        }
        self.inner.deliver(self.id, to, msg)
    }

    /// Blocks until the next message or control signal arrives.
    ///
    /// Returns [`RecvError::Killed`] **immediately** once the node has
    /// been killed: messages still queued in the mailbox from before the
    /// kill are discarded unread, exactly as a revoked machine loses its
    /// in-flight TCP data. (The discrete-event core pins the same
    /// semantic: deliveries scheduled to a node that dies before
    /// dispatch are dropped, never handled.)
    pub fn recv(&self) -> Result<Incoming<M>, RecvError> {
        if self.inner.is_dead(self.id) {
            return Err(RecvError::Killed);
        }
        match self.rx.recv() {
            Ok(Incoming::Control(Control::Kill)) => Err(RecvError::Killed),
            Ok(other) => Ok(other),
            Err(_) => Err(RecvError::Disconnected),
        }
    }

    /// Like [`NodeCtx::recv`] but gives up after `timeout`.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<Incoming<M>, RecvError> {
        if self.inner.is_dead(self.id) {
            return Err(RecvError::Killed);
        }
        match self.rx.recv_timeout(timeout) {
            Ok(Incoming::Control(Control::Kill)) => Err(RecvError::Killed),
            Ok(other) => Ok(other),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Incoming<M>, RecvError> {
        if self.inner.is_dead(self.id) {
            return Err(RecvError::Killed);
        }
        match self.rx.try_recv() {
            Ok(Incoming::Control(Control::Kill)) => Err(RecvError::Killed),
            Ok(other) => Ok(other),
            Err(crossbeam::channel::TryRecvError::Empty) => Err(RecvError::Empty),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Whether a peer node is currently alive.
    pub fn peer_alive(&self, node: NodeId) -> bool {
        self.inner.is_alive(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_class_predicates() {
        assert!(NodeClass::Reliable.is_reliable());
        assert!(!NodeClass::Transient.is_reliable());
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "node-7");
    }
}
