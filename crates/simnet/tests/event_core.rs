//! Integration suite for the discrete-event core: fault injection at
//! enqueue time, run-to-run determinism, obs sim-clock driving, and
//! semantic parity with the thread-per-node cluster.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use proteus_obs::Recorder;
use proteus_simnet::{
    Cluster, Control, FaultPlan, FnNode, Incoming, NodeClass, NodeId, SimCluster,
};
use proteus_simtime::{SimDuration, SimTime};

/// Builds an N-node ring where each node forwards a hop-countdown token
/// to its successor; returns the node ids.
fn ring(sim: &mut SimCluster<u64>, n: u32) -> Vec<NodeId> {
    (0..n)
        .map(|i| {
            let next = NodeId((i + 1) % n);
            sim.add_node(
                NodeClass::Transient,
                FnNode::new(move |ctx, _from, hops: u64| {
                    if hops > 0 {
                        let _ = ctx.send(next, hops - 1);
                    }
                }),
            )
        })
        .collect()
}

#[test]
fn ring_broadcast_converges_and_is_deterministic() {
    let run = || {
        let mut sim: SimCluster<u64> = SimCluster::new();
        sim.set_link_latency(SimDuration::from_millis(1));
        let nodes = ring(&mut sim, 64);
        sim.send_as_harness(nodes[0], 3 * 64).unwrap();
        let end = sim.run_until_idle();
        (end, sim.stats(), sim.traffic_matrix())
    };
    let (end_a, stats_a, traffic_a) = run();
    let (end_b, stats_b, traffic_b) = run();
    // 3*64 hops + the harness inject, each over a 1ms link.
    assert_eq!(stats_a.messages, 3 * 64 + 1);
    assert_eq!(end_a, SimTime::from_millis(3 * 64 + 1));
    assert_eq!((end_a, stats_a, traffic_a), (end_b, stats_b, traffic_b));
}

#[test]
fn faults_apply_at_enqueue_with_the_same_seeded_streams_as_the_thread_core() {
    // The same plan over the same per-pair send sequence must produce
    // identical fault verdicts on both cores: drop/dup/delay decisions
    // are a pure function of (seed, pair, send index).
    let plan = |seed| {
        FaultPlan::new(seed).with_rule(proteus_simnet::FaultRule {
            from: Some(NodeId::HARNESS),
            to: Some(NodeId(0)),
            drop: 0.3,
            duplicate: 0.3,
            delay: 0.2,
            filter: None,
        })
    };
    const SENDS: u64 = 200;

    // Event core: count what actually arrives.
    let mut sim: SimCluster<u64> = SimCluster::new();
    let sink = sim.add_node(NodeClass::Reliable, FnNode::new(|_, _, _| {}));
    sim.set_faults(plan(42));
    for i in 0..SENDS {
        let _ = sim.send_as_harness(sink, i);
    }
    sim.run_until_idle();
    let event_stats = sim.fault_stats();
    let event_delivered = sim.stats().messages;

    // Thread core: same sends, same seed, from the single harness thread
    // (so the pair's send order is identical).
    let mut cluster: Cluster<u64> = Cluster::new();
    let t_sink = cluster.spawn(NodeClass::Reliable, |ctx| while ctx.recv().is_ok() {});
    assert_eq!(t_sink, sink);
    cluster.set_faults(plan(42));
    let h = cluster.handle();
    for i in 0..SENDS {
        let _ = h.send_as_harness(t_sink, i);
    }
    let thread_stats = cluster.fault_stats();

    assert_eq!(event_stats, thread_stats);
    // Delivered = sends - dropped - still-held + duplicated extras.
    let held = if sim.flush_delayed() > 0 { 1 } else { 0 };
    assert_eq!(
        event_delivered,
        SENDS - event_stats.dropped + event_stats.duplicated - held
    );
    cluster.abort_all();
}

#[test]
fn delayed_messages_reorder_by_one_and_flush_releases_the_tail() {
    let mut sim: SimCluster<u64> = SimCluster::new();
    let got: Rc<RefCell<Vec<u64>>> = Default::default();
    let sink_got = Rc::clone(&got);
    let sink = sim.add_node(
        NodeClass::Reliable,
        FnNode::new(move |_, _, msg| sink_got.borrow_mut().push(msg)),
    );
    sim.set_faults(FaultPlan::new(5).delay_between(NodeId::HARNESS, sink, 1.0));
    for i in [1u64, 2, 3] {
        sim.send_as_harness(sink, i).unwrap();
    }
    assert_eq!(sim.fault_stats().delayed, 3);
    // Each send released the previous held message; 3 is still held.
    assert_eq!(sim.flush_delayed(), 1);
    sim.run_until_idle();
    assert_eq!(*got.borrow(), vec![1, 2, 3]);
}

#[test]
fn replacing_fault_plan_flushes_held_messages_into_the_queue() {
    let mut sim: SimCluster<u64> = SimCluster::new();
    let got: Rc<RefCell<Vec<u64>>> = Default::default();
    let sink_got = Rc::clone(&got);
    let sink = sim.add_node(
        NodeClass::Reliable,
        FnNode::new(move |_, _, msg| sink_got.borrow_mut().push(msg)),
    );
    sim.set_faults(FaultPlan::new(5).delay_between(NodeId::HARNESS, sink, 1.0));
    sim.send_as_harness(sink, 7).unwrap();
    // Replacing the plan must schedule the held message, not destroy it.
    sim.set_faults(FaultPlan::new(6));
    sim.send_as_harness(sink, 8).unwrap();
    sim.run_until_idle();
    assert_eq!(*got.borrow(), vec![7, 8]);
    assert_eq!(sim.stats().dropped, 0);
}

#[test]
fn eviction_warning_and_shutdown_reach_handlers_kill_does_not() {
    let mut sim: SimCluster<u64> = SimCluster::new();
    let seen: Rc<RefCell<Vec<Control>>> = Default::default();
    let node_seen = Rc::clone(&seen);
    let node = sim.add_node(
        NodeClass::Transient,
        FnNode::new(|_, _, _: u64| {}).with_control(move |_, ctrl| {
            node_seen.borrow_mut().push(ctrl);
        }),
    );
    sim.revoke(node, 120_000).unwrap();
    sim.shutdown(node).unwrap();
    sim.schedule_control(SimTime::from_millis(10), node, Control::Kill);
    sim.run_until_idle();
    assert_eq!(
        *seen.borrow(),
        vec![
            Control::EvictionWarning {
                deadline_ms: 120_000
            },
            Control::Shutdown,
        ]
    );
    // The scheduled Kill retired the node without a handler call.
    assert!(!sim.alive(node));
}

#[test]
fn scheduled_kill_scripts_a_crash_mid_protocol() {
    let mut sim: SimCluster<u64> = SimCluster::new();
    sim.set_link_latency(SimDuration::from_millis(1));
    let nodes = ring(&mut sim, 8);
    // Token does 4 laps (32 hops), but node 5 dies at t=10ms: the token
    // reaches it once (t=6ms) and dies in flight the second time.
    sim.schedule_control(SimTime::from_millis(10), nodes[5], Control::Kill);
    sim.send_as_harness(nodes[0], 32).unwrap();
    sim.run_until_idle();
    assert_eq!(sim.stats().dropped, 1);
    assert_eq!(sim.traffic_between(nodes[4], nodes[5]), 1);
    // The ring is broken after 13 deliveries (the inject at t=1ms plus
    // 12 forward hops); the 14th, bound for dead node 5, is the drop.
    assert_eq!(sim.stats().messages, 13);
}

#[test]
fn recorder_clock_tracks_event_time() {
    let mut sim: SimCluster<u64> = SimCluster::new();
    sim.set_link_latency(SimDuration::from_millis(7));
    let rec = Arc::new(Recorder::new());
    sim.set_recorder(Arc::clone(&rec));
    let sink = sim.add_node(NodeClass::Reliable, FnNode::new(|_, _, _| {}));
    sim.send_as_harness(sink, 1).unwrap();
    sim.run_until_idle();
    assert_eq!(rec.now(), SimTime::from_millis(7));
    sim.run_until(SimTime::from_millis(30));
    assert_eq!(rec.now(), SimTime::from_millis(30));
}

#[test]
fn stopped_node_stops_handling_but_keeps_its_class() {
    let mut sim: SimCluster<u64> = SimCluster::new();
    let count: Rc<RefCell<u64>> = Default::default();
    let node_count = Rc::clone(&count);
    let node = sim.add_node(
        NodeClass::Reliable,
        FnNode::new(move |ctx, _, _| {
            *node_count.borrow_mut() += 1;
            ctx.stop();
        }),
    );
    sim.send_as_harness(node, 1).unwrap();
    sim.send_as_harness(node, 2).unwrap();
    sim.run_until_idle();
    assert_eq!(*count.borrow(), 1);
    assert!(!sim.alive(node));
    assert_eq!(sim.class_of(node), Some(NodeClass::Reliable));
    assert_eq!(sim.stats().dropped, 1);
}

/// A two-node request/reply protocol driven through both cores must
/// produce the same traffic matrix and delivered counts.
#[test]
fn thread_shim_and_event_core_agree_on_a_simple_protocol() {
    const N: u64 = 25;

    // Event core.
    let mut sim: SimCluster<u64> = SimCluster::new();
    let server = sim.add_node(
        NodeClass::Reliable,
        FnNode::new(|ctx, from, msg| {
            let _ = ctx.send(from, msg * 2);
        }),
    );
    let client = sim.add_node(NodeClass::Transient, FnNode::new(|_, _, _| {}));
    for i in 0..N {
        sim.send_from(client, server, i).unwrap();
    }
    sim.run_until_idle();

    // Thread core.
    let mut cluster: Cluster<u64> = Cluster::new();
    let t_server = cluster.spawn(NodeClass::Reliable, move |ctx| {
        for _ in 0..N {
            if let Ok(Incoming::App(env)) = ctx.recv() {
                let _ = ctx.send(env.from, env.msg * 2);
            }
        }
    });
    let (done_tx, done_rx) = crossbeam::channel::bounded(1);
    let t_client = cluster.spawn(NodeClass::Transient, move |ctx| {
        for i in 0..N {
            ctx.send(t_server, i).unwrap();
        }
        for _ in 0..N {
            let _ = ctx.recv();
        }
        done_tx.send(()).unwrap();
    });
    done_rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .unwrap();

    assert_eq!((server, client), (t_server, t_client));
    assert_eq!(sim.stats(), cluster.stats());
    assert_eq!(sim.traffic_matrix(), cluster.traffic_matrix());
    cluster.join();
}
