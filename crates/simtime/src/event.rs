//! A stable discrete-event priority queue.
//!
//! Events scheduled for the same instant pop in insertion order, which keeps
//! simulations deterministic regardless of heap tie-breaking internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// One scheduled entry: fire time, insertion sequence number, payload.
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A discrete-event queue ordered by fire time, then by insertion order.
///
/// # Examples
///
/// ```
/// use proteus_simtime::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(20), "later");
/// q.schedule(SimTime::from_millis(10), "first");
/// q.schedule(SimTime::from_millis(10), "second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_millis(10), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(10), "second")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(20), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// The fire time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3u32);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(SimTime::from_millis(5), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "early");
        q.schedule(SimTime::from_millis(30), "late");
        assert_eq!(q.pop_due(SimTime::from_millis(5)), None);
        assert_eq!(
            q.pop_due(SimTime::from_millis(15)),
            Some((SimTime::from_millis(10), "early"))
        );
        assert_eq!(q.pop_due(SimTime::from_millis(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::EPOCH, ());
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
