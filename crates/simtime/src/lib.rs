//! Simulated time primitives shared by every Proteus simulator.
//!
//! All of the market, billing, and cost simulations in this workspace run in
//! *simulated* time so that months of spot-market history can be replayed in
//! milliseconds and so that every experiment is deterministic under a fixed
//! seed. This crate provides:
//!
//! * [`SimTime`] / [`SimDuration`] — millisecond-resolution instants and
//!   spans with convenient hour/minute accessors (EC2 billing is hourly, so
//!   hour arithmetic is pervasive).
//! * [`EventQueue`] — a stable discrete-event priority queue.
//! * [`rng`] — seeded RNG construction helpers so that independent
//!   subsystems can derive decorrelated-but-reproducible random streams.

// Time primitives sit under every simulator loop; they return typed
// values, never panic; any retained expect documents a real invariant
// at its use site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod event;
pub mod rng;
pub mod time;

pub use event::EventQueue;
pub use time::{SimDuration, SimTime};
