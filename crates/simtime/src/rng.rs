//! Seeded RNG construction helpers.
//!
//! Every stochastic subsystem in the workspace (trace generation, market
//! evolution, SGD shuffling, Gibbs sampling) derives its generator through
//! these helpers so a single experiment seed reproduces an entire run, and
//! so independent subsystems draw from decorrelated streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic generator from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use proteus_simtime::rng::seeded;
/// use rand::Rng;
///
/// let mut a = seeded(42);
/// let mut b = seeded(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a base seed and a stream label.
///
/// Distinct `(base, stream)` pairs map to well-spread seeds via the
/// SplitMix64 finalizer, so subsystems seeded from the same experiment seed
/// do not observe correlated randomness.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    // SplitMix64 finalization of the combined word.
    let mut z = base
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a deterministic generator for a named stream under a base seed.
pub fn seeded_stream(base: u64, stream: u64) -> StdRng {
    seeded(derive_seed(base, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let xs: Vec<u32> = (0..8).map(|_| 0u32).collect();
        let mut a = seeded(7);
        let mut b = seeded(7);
        let va: Vec<u32> = xs.iter().map(|_| a.gen()).collect();
        let vb: Vec<u32> = xs.iter().map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn derived_streams_differ() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        let mut a = seeded_stream(1, 0);
        let mut b = seeded_stream(1, 1);
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_seed_spreads_consecutive_streams() {
        // Consecutive stream ids should not produce consecutive seeds.
        let s0 = derive_seed(99, 0);
        let s1 = derive_seed(99, 1);
        assert!(s0.abs_diff(s1) > 1_000_000);
    }
}
