//! Millisecond-resolution simulated instants and durations.
//!
//! [`SimTime`] is an absolute instant measured from the simulation epoch
//! (the moment a simulation starts); [`SimDuration`] is a span between two
//! instants. Both wrap a `u64` millisecond count, which gives ~584 million
//! years of range — far beyond any trace replay — while keeping arithmetic
//! exact (no floating-point drift in billing-hour boundaries).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Milliseconds in one second.
pub const MILLIS_PER_SEC: u64 = 1_000;
/// Milliseconds in one minute.
pub const MILLIS_PER_MIN: u64 = 60 * MILLIS_PER_SEC;
/// Milliseconds in one hour (the EC2 billing granularity).
pub const MILLIS_PER_HOUR: u64 = 60 * MILLIS_PER_MIN;

/// A span of simulated time with millisecond resolution.
///
/// # Examples
///
/// ```
/// use proteus_simtime::SimDuration;
///
/// let warning = SimDuration::from_mins(2);
/// assert_eq!(warning.as_secs(), 120);
/// assert!(warning < SimDuration::from_hours(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MILLIS_PER_SEC)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * MILLIS_PER_MIN)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * MILLIS_PER_HOUR)
    }

    /// Creates a duration from fractional hours, rounding to the nearest
    /// millisecond.
    ///
    /// Negative inputs saturate to [`SimDuration::ZERO`].
    pub fn from_hours_f64(hours: f64) -> Self {
        if hours <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((hours * MILLIS_PER_HOUR as f64).round() as u64)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// millisecond. Negative inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * MILLIS_PER_SEC as f64).round() as u64)
    }

    /// Total length in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Total length in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / MILLIS_PER_SEC
    }

    /// Total length in whole minutes (truncating).
    pub const fn as_mins(self) -> u64 {
        self.0 / MILLIS_PER_MIN
    }

    /// Total length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SEC as f64
    }

    /// Total length in fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_MIN as f64
    }

    /// Total length in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction clamping at zero instead of panicking on underflow.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Scales the duration by a non-negative factor, rounding to the
    /// nearest millisecond. Negative factors saturate to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`SimDuration::saturating_sub`] when the operands may be unordered.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms >= MILLIS_PER_HOUR {
            write!(f, "{:.2}h", self.as_hours_f64())
        } else if ms >= MILLIS_PER_MIN {
            write!(f, "{:.1}m", self.as_mins_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

/// An absolute instant in simulated time, measured from the simulation
/// epoch.
///
/// # Examples
///
/// ```
/// use proteus_simtime::{SimDuration, SimTime};
///
/// let t = SimTime::EPOCH + SimDuration::from_mins(95);
/// // 95 minutes in: we are 35 minutes into billing hour 1.
/// assert_eq!(t.billing_hour_index(SimTime::EPOCH), 1);
/// assert_eq!(t.time_into_billing_hour(SimTime::EPOCH).as_mins(), 35);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (time zero).
    pub const EPOCH: SimTime = SimTime(0);

    /// Creates an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from whole hours since the epoch.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * MILLIS_PER_HOUR)
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Fractional hours since the epoch.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    /// The duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_millis(self.0.saturating_sub(earlier.0))
    }

    /// Index of the billing hour containing this instant, for an allocation
    /// whose billing started at `start` (hour 0 covers `[start, start+1h)`).
    pub fn billing_hour_index(self, start: SimTime) -> u64 {
        self.since(start).as_millis() / MILLIS_PER_HOUR
    }

    /// How far into the current billing hour this instant is, for billing
    /// that started at `start`.
    pub fn time_into_billing_hour(self, start: SimTime) -> SimDuration {
        SimDuration::from_millis(self.since(start).as_millis() % MILLIS_PER_HOUR)
    }

    /// Time remaining until the end of the current billing hour, for
    /// billing that started at `start`.
    ///
    /// At an exact hour boundary the *next* full hour is returned, matching
    /// EC2 semantics where a new billing hour begins the instant the
    /// previous one ends.
    pub fn time_to_billing_hour_end(self, start: SimTime) -> SimDuration {
        SimDuration::from_millis(MILLIS_PER_HOUR) - self.time_into_billing_hour(start)
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_millis())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_millis();
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics in debug builds if the subtraction would precede the epoch.
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.as_millis())
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}h", self.as_hours_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(60), SimDuration::from_mins(1));
        assert_eq!(SimDuration::from_mins(60), SimDuration::from_hours(1));
        assert_eq!(SimDuration::from_hours(2).as_millis(), 2 * MILLIS_PER_HOUR);
    }

    #[test]
    fn fractional_hours_round_trip() {
        let d = SimDuration::from_hours_f64(1.5);
        assert_eq!(d.as_mins(), 90);
        assert!((d.as_hours_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn negative_fractional_inputs_saturate() {
        assert_eq!(SimDuration::from_hours_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.1), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs(5).mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_secs(1));
    }

    #[test]
    fn billing_hour_arithmetic() {
        let start = SimTime::from_millis(500);
        let t = start + SimDuration::from_mins(125);
        assert_eq!(t.billing_hour_index(start), 2);
        assert_eq!(t.time_into_billing_hour(start).as_mins(), 5);
        assert_eq!(t.time_to_billing_hour_end(start).as_mins(), 55);
    }

    #[test]
    fn billing_hour_boundary_returns_full_hour() {
        let start = SimTime::EPOCH;
        let t = start + SimDuration::from_hours(3);
        assert_eq!(t.time_into_billing_hour(start), SimDuration::ZERO);
        assert_eq!(
            t.time_to_billing_hour_end(start),
            SimDuration::from_hours(1)
        );
    }

    #[test]
    fn since_saturates_for_future_reference() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early).as_millis(), 10);
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(SimDuration::from_hours(2).to_string(), "2.00h");
        assert_eq!(SimDuration::from_mins(30).to_string(), "30.0m");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimTime::from_hours(1).to_string(), "t+1.000h");
    }

    #[test]
    fn min_max_are_consistent() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let ta = SimTime::from_millis(1);
        let tb = SimTime::from_millis(2);
        assert_eq!(ta.min(tb), ta);
        assert_eq!(ta.max(tb), tb);
    }
}
