//! Property test for the [`EventQueue`] ordering invariant the simnet
//! discrete-event core relies on: pops are globally timestamp-ordered,
//! and among events scheduled for the same instant, FIFO-stable in
//! insertion order — under arbitrary interleavings of `schedule` and
//! `pop_due`.

use proptest::prelude::*;
use proteus_simtime::{EventQueue, SimTime};

/// Checks one popped `(time, seq)` pair against the model: it must be
/// the pending event with the minimal (timestamp, insertion-seq) key.
fn check_pop(pending: &mut Vec<(SimTime, u64)>, got: (SimTime, u64)) {
    let min = pending.iter().copied().min_by_key(|&(at, s)| (at, s));
    prop_assert_eq!(Some(got), min, "pop violated (time, seq) order");
    pending.retain(|&e| e != got);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Drive the queue with a random op sequence (schedule at a random
    /// instant, or advance a monotone clock and drain everything due)
    /// against a naive model of the pending set.
    #[test]
    fn pops_are_time_ordered_and_fifo_stable_under_interleaving(
        ops in proptest::collection::vec((0u8..4u8, 0u64..40u64), 1..150),
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        // Model of pending events: (scheduled instant, insertion seq).
        let mut pending: Vec<(SimTime, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut clock = 0u64;

        for (kind, t) in ops {
            if kind == 0 {
                // Advance the clock (monotone, as a sim loop would) and
                // drain everything due.
                clock = clock.max(t);
                let now = SimTime::from_millis(clock);
                while let Some((at, got)) = q.pop_due(now) {
                    prop_assert!(at <= now, "pop_due surfaced a future event");
                    check_pop(&mut pending, (at, got));
                }
                // Nothing due may remain in the model.
                prop_assert!(
                    !pending.iter().any(|&(at, _)| at <= now),
                    "pop_due left a due event behind"
                );
            } else {
                let at = SimTime::from_millis(t);
                q.schedule(at, seq);
                pending.push((at, seq));
                seq += 1;
            }
        }

        // Final drain: the remainder must come out in (time, seq) order.
        while let Some((at, got)) = q.pop() {
            check_pop(&mut pending, (at, got));
        }
        prop_assert!(pending.is_empty(), "queue lost events");
        prop_assert_eq!(q.pop(), None);
    }
}
