//! BidBrain explorer: train the eviction-probability estimator on a
//! synthetic spot-price history, inspect the β curve, and compare the
//! four provisioning schemes on the same market — a miniature of the
//! paper's cost-savings study.
//!
//! ```text
//! cargo run --release --example bidbrain_explorer
//! ```

use proteus::bidbrain::BetaEstimator;
use proteus::costsim::{run_study, StudyConfig};
use proteus::market::{catalog, MarketModel, TraceGenerator};
use proteus::simtime::{SimDuration, SimTime};

fn main() {
    // 1. Synthesize a month of prices for one market and train β.
    let market = catalog::paper_markets()[0];
    let horizon = SimDuration::from_hours(24 * 30);
    let trace = TraceGenerator::new(11, MarketModel::default()).generate(market, horizon);
    let od = market.instance_type().on_demand_price;
    println!(
        "market {market}: on-demand ${od:.3}/h, 30-day mean spot ${:.3}/h, {:.1}% of time above on-demand",
        trace.mean_price(SimTime::EPOCH, SimTime::EPOCH + horizon),
        100.0 * trace.fraction_above(od, SimTime::EPOCH, SimTime::EPOCH + horizon),
    );

    let mut beta = BetaEstimator::new();
    beta.train(
        market,
        &trace,
        SimTime::EPOCH,
        SimTime::EPOCH + horizon,
        SimDuration::from_mins(30),
        &BetaEstimator::default_deltas(),
    );
    println!("\nβ curve (probability of eviction within the billing hour):");
    println!("{:>10} {:>8} {:>14}", "bid delta", "β", "median tte");
    for p in beta.table(market).expect("trained").points() {
        println!("{:>10.4} {:>8.3} {:>14}", p.delta, p.beta, p.median_tte);
    }

    // 2. Compare the four schemes across random job starts.
    println!("\nscheme comparison (2-hour jobs, 40 random starts):");
    let results = run_study(StudyConfig {
        seed: 11,
        starts: 40,
        job_hours: 2.0,
        ..StudyConfig::default()
    });
    println!(
        "{:>22} {:>10} {:>12} {:>10} {:>10}",
        "scheme", "cost $", "% on-demand", "hours", "evictions"
    );
    for r in &results {
        println!(
            "{:>22} {:>10.2} {:>12.1} {:>10.2} {:>10.2}",
            r.scheme, r.mean_cost, r.cost_pct_of_on_demand, r.mean_runtime_hours, r.mean_evictions
        );
    }
    let proteus = results.last().expect("four schemes");
    println!(
        "\nProteus free compute: {:.0}% of its machine-hours",
        100.0 * proteus.usage.free_fraction()
    );
}
