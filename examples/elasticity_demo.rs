//! Elasticity demo: drive AgileML directly through bulk addition, warned
//! eviction, and an unwarned failure — the paper's Fig. 5/Fig. 16
//! narrative with real distributed training.
//!
//! ```text
//! cargo run --release --example elasticity_demo
//! ```

use proteus::agileml::{AgileConfig, AgileMlJob, JobEvent};
use proteus::simnet::NodeClass;
use proteus_mlapps::data::{netflix_like, MfDataConfig};
use proteus_mlapps::mf::{MatrixFactorization, MfConfig};

fn main() -> Result<(), String> {
    let data = netflix_like(
        &MfDataConfig {
            rows: 60,
            cols: 40,
            true_rank: 3,
            observed: 1_200,
            noise: 0.02,
        },
        7,
    );
    let app = MatrixFactorization::new(MfConfig {
        rows: 60,
        cols: 40,
        rank: 5,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    });
    let cfg = AgileConfig {
        partitions: 4,
        data_blocks: 12,
        seed: 7,
        ..AgileConfig::default()
    };

    println!("phase 1: 1 reliable + 2 transient machines (stage selection by ratio)");
    let mut job = AgileMlJob::launch(app, data.clone(), cfg, 1, 2)?;
    job.wait_clock(8)?;
    report(&mut job, &data)?;

    println!("\nphase 2: bulk-add 4 spot machines (incorporated in the background)");
    let added = job.add_machines(NodeClass::Transient, 4)?;
    job.wait_clock(20)?;
    report(&mut job, &data)?;

    println!("\nphase 3: eviction warning for two machines (drain within the window)");
    job.evict_with_warning(&added[..2])?;
    job.wait_clock(30)?;
    report(&mut job, &data)?;

    println!("\nphase 4: one machine fails without warning (online rollback recovery)");
    let rolled = job.fail_nodes(&[added[2]])?;
    println!("  rolled back to clock {rolled}");
    let min = job.status()?.min_clock;
    job.wait_clock(min + 10)?;
    report(&mut job, &data)?;

    println!("\nevent log:");
    for e in job.events().to_vec() {
        match e {
            JobEvent::ClockAdvanced { .. } => {}
            other => println!("  {other:?}"),
        }
    }
    job.shutdown()?;
    Ok(())
}

fn report(
    job: &mut AgileMlJob<MatrixFactorization>,
    data: &[proteus_mlapps::mf::Rating],
) -> Result<(), String> {
    let s = job.status()?;
    let obj = job.objective(data)?;
    println!(
        "  stage {:?} | {} reliable + {} transient | {} ActivePS | clock {} | objective {obj:.4}",
        s.stage, s.reliable, s.transient, s.active_ps, s.min_clock
    );
    Ok(())
}
