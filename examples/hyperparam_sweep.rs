//! Hyperparameter sweeps as job queues (paper Secs. 5 & 6.3).
//!
//! ```text
//! cargo run --release --example hyperparam_sweep
//! ```
//!
//! The paper motivates long workloads with "the common practice of
//! performing sequences of ML jobs for hyperparameter explorations" and
//! runs them as a queue: spot allocations (and their paid hours) carry
//! across job boundaries, and at the end the spot instances idle to
//! their billing-hour ends hoping for eviction refunds. This example
//! runs a six-job sweep through the cost simulator and compares it to
//! six independently provisioned sessions and to the on-demand price.

use proteus::bidbrain::BetaEstimator;
use proteus::costsim::{run_job_queue, JobSpec, Scheme, SchemeKind};
use proteus::market::{catalog, MarketKey, MarketModel, TraceGenerator, Zone};
use proteus::simtime::{SimDuration, SimTime};

fn main() {
    // A month of synthetic market history; β trained on the first half.
    let keys = catalog::paper_markets();
    let gen = TraceGenerator::new(2026, MarketModel::default());
    let traces = gen.generate_set(&keys, SimDuration::from_hours(24 * 30));
    let mut beta = BetaEstimator::new();
    for k in &keys {
        beta.train(
            *k,
            traces.get(k).expect("generated"),
            SimTime::EPOCH,
            SimTime::from_hours(24 * 15),
            SimDuration::from_mins(30),
            &BetaEstimator::default_deltas(),
        );
    }
    let start = SimTime::from_hours(24 * 16);
    let od_market = MarketKey::new(catalog::c4_xlarge(), Zone(0));

    // Six hyperparameter candidates ≈ six 2-hour training jobs.
    let jobs = 6usize;
    let scheme = Scheme {
        kind: SchemeKind::paper_proteus(),
        job: JobSpec::cluster_b_job(2.0, od_market),
    };

    println!("hyperparameter sweep: {jobs} × 2-hour jobs, Proteus policy\n");
    let queued = run_job_queue(
        &scheme,
        jobs,
        &traces,
        &beta,
        start,
        SimDuration::from_hours(48),
    );
    assert!(queued.completed, "sweep finished");

    // The naive alternative: provision and tear down per candidate.
    let mut independent_total = 0.0;
    let mut t = start;
    for _ in 0..jobs {
        let one = run_job_queue(&scheme, 1, &traces, &beta, t, SimDuration::from_hours(48));
        independent_total += one.total_cost;
        t = t + one.makespan + SimDuration::from_mins(5);
    }

    let od_cost = 128.0 * od_market.instance_type().on_demand_price * 2.0 * jobs as f64;
    println!("{:>34} {:>10}", "strategy", "cost $");
    println!("{:>34} {:>10.2}", "128 on-demand machines per job", od_cost);
    println!(
        "{:>34} {:>10.2}",
        "independent Proteus sessions", independent_total
    );
    println!(
        "{:>34} {:>10.2}",
        "one Proteus job queue", queued.total_cost
    );
    println!(
        "\nqueue makespan {:.1} h across {} jobs; {} evictions; {:.0}% of machine-hours free",
        queued.makespan.as_hours_f64(),
        jobs,
        queued.evictions,
        100.0 * queued.usage.free_fraction(),
    );
    println!(
        "teardown refunds collected while idling to hour ends: ${:.2}",
        queued.teardown_refunds
    );
    println!(
        "\nsavings: {:.0}% vs on-demand; job boundaries inside the queue are free",
        100.0 * (1.0 - queued.total_cost / od_cost)
    );
}
