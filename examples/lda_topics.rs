//! Topic discovery: distributed LDA over an elastic cluster.
//!
//! ```text
//! cargo run --release --example lda_topics
//! ```
//!
//! Generates a corpus from five ground-truth topics (each owning a slice
//! of the vocabulary), trains collapsed-Gibbs LDA across reliable +
//! transient machines, and prints the discovered topic→word structure.

use proteus::agileml::{AgileConfig, AgileMlJob};
use proteus_mlapps::data::{nytimes_like, LdaDataConfig};
use proteus_mlapps::lda::{Lda, LdaConfig};
use proteus_ps::ParamKey;

fn main() -> Result<(), String> {
    let topics = 5usize;
    let data_cfg = LdaDataConfig {
        docs: 50,
        vocab: 100,
        true_topics: topics,
        doc_len: 40,
        topic_purity: 0.9,
    };
    let docs = nytimes_like(&data_cfg, 13, topics);
    let app = Lda::new(LdaConfig {
        vocab: data_cfg.vocab,
        topics,
        alpha: 0.3,
        beta: 0.05,
    });
    let cfg = AgileConfig {
        partitions: 6,
        data_blocks: 10,
        seed: 13,
        ..AgileConfig::default()
    };

    println!("training LDA on 1 reliable + 3 transient machines…");
    let mut job = AgileMlJob::launch(app, docs.clone(), cfg, 1, 3)?;
    job.wait_clock(30)?;
    let objective = job.objective(&docs)?;
    let snap = job.snapshot()?;
    job.shutdown()?;

    println!("per-token negative log-likelihood: {objective:.3}\n");
    println!("top words per topic (word ids; ground truth: topic t owns 20t..20t+19):");
    let vocab = data_cfg.vocab;
    for k in 0..topics {
        let mut scored: Vec<(u32, f32)> = (0..vocab)
            .filter_map(|w| {
                snap.params
                    .get(&ParamKey(u64::from(w)))
                    .map(|v| (w, v.as_slice()[k]))
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("counts are finite"));
        let top: Vec<String> = scored
            .iter()
            .take(8)
            .map(|(w, c)| format!("{w}({c:.0})"))
            .collect();
        println!("  topic {k}: {}", top.join(" "));
    }
    Ok(())
}
