//! Quickstart: train a matrix-factorization model with Proteus on a
//! simulated spot market.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Launches one reliable (on-demand) machine plus whatever transient
//! (spot) capacity BidBrain decides to buy, trains through six hours of
//! simulated market churn, and prints the bill.

use proteus::{Proteus, ProteusConfig};
use proteus_mlapps::data::{netflix_like, MfDataConfig};
use proteus_mlapps::mf::{MatrixFactorization, MfConfig};

fn main() -> Result<(), String> {
    // A Netflix-like sparse rating matrix (synthetic; see DESIGN.md).
    let data_cfg = MfDataConfig {
        rows: 60,
        cols: 40,
        true_rank: 3,
        observed: 1_500,
        noise: 0.02,
    };
    let data = netflix_like(&data_cfg, 42);
    let app = MatrixFactorization::new(MfConfig {
        rows: data_cfg.rows,
        cols: data_cfg.cols,
        rank: 6,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    });

    println!("launching Proteus: 1 on-demand machine + spot market capacity");
    let mut session = Proteus::launch(app, data.clone(), ProteusConfig::default())?;
    println!(
        "  t={} transient machines acquired: {}",
        session.market_now(),
        session.transient_machines()
    );

    let before = session.job().objective(&data)?;
    session.run_market_hours(6.0)?;
    session.wait_clock(30)?;
    let report = session.finish()?;

    println!(
        "training:   objective {before:.4} -> {:.4}",
        report.final_objective
    );
    println!("iterations: {}", report.clocks);
    println!(
        "machines:   {} allocations, {} evictions, {:.1} machine-hours ({:.0}% free)",
        report.allocations,
        report.evictions,
        report.usage.total_hours(),
        100.0 * report.free_fraction()
    );
    println!(
        "cost:       ${:.2} vs ${:.2} for the same hours on-demand ({:.0}% saved)",
        report.cost,
        report.on_demand_equivalent(0.209),
        100.0 * (1.0 - report.cost / report.on_demand_equivalent(0.209).max(1e-9))
    );
    Ok(())
}
