//! Spot-market training: MLR classification on a volatile market, with
//! the full Proteus loop narrated step by step.
//!
//! ```text
//! cargo run --release --example spot_market_training
//! ```
//!
//! Uses a deliberately turbulent market so the run shows acquisitions,
//! eviction warnings, drains, and free compute within a few simulated
//! hours.

use proteus::market::MarketModel;
use proteus::{Proteus, ProteusConfig};
use proteus_mlapps::data::{imagenet_like, MlrDataConfig};
use proteus_mlapps::mlr::{Mlr, MlrConfig};

fn main() -> Result<(), String> {
    let data = imagenet_like(
        &MlrDataConfig {
            examples: 300,
            dim: 12,
            classes: 4,
            separation: 2.0,
            noise: 0.5,
        },
        19,
    );
    let app = Mlr::new(MlrConfig {
        dim: 12,
        classes: 4,
        learning_rate: 0.08,
        reg: 1e-4,
    });
    let config = ProteusConfig {
        market_model: MarketModel::volatile(),
        max_machines: 10,
        ..ProteusConfig::default()
    };

    println!("launching Proteus for MLR on a volatile spot market…");
    let mut session = Proteus::launch(app, data.clone(), config)?;
    let start_obj = session.job().objective(&data)?;

    for hour in 1..=8 {
        session.run_market_hours(1.0)?;
        let status = session.job().status()?;
        println!(
            "market hour {hour}: {} transient machines, stage {:?}, clock {}",
            session.transient_machines(),
            status.stage,
            status.min_clock
        );
    }

    let report = session.finish()?;
    println!(
        "\ncross-entropy: {start_obj:.3} -> {:.3}",
        report.final_objective
    );
    println!(
        "allocations {}, evictions {}, free compute {:.0}%",
        report.allocations,
        report.evictions,
        100.0 * report.free_fraction()
    );
    println!(
        "bill ${:.2} (same hours on-demand: ${:.2})",
        report.cost,
        report.on_demand_equivalent(0.209)
    );
    Ok(())
}
