//! Automated stage-threshold selection — the paper's Sec. 3.3 future
//! work, implemented.
//!
//! ```text
//! cargo run --release --example threshold_autotuning
//! ```
//!
//! For each workload preset, sweep the cluster performance model over
//! the transient:reliable ratio axis and print the automatically
//! selected stage-switch thresholds, then run a real training job with
//! those thresholds installed.

use proteus::agileml::{AgileConfig, AgileMlJob};
use proteus::perfmodel::{auto_thresholds, presets, ClusterSpec};
use proteus_mlapps::data::{netflix_like, MfDataConfig};
use proteus_mlapps::mf::{MatrixFactorization, MfConfig};
use proteus_simnet::NodeClass;

fn main() -> Result<(), String> {
    let spec = ClusterSpec::cluster_a();
    println!("automated stage thresholds (64-machine Cluster-A model):\n");
    println!(
        "{:>24} {:>14} {:>14}",
        "workload", "stage2 above", "stage3 above"
    );
    let workloads = [
        ("MF / Netflix rank-1000", presets::mf_netflix_rank1000()),
        ("MLR / ImageNet LLC", presets::mlr_imagenet()),
        ("LDA / NYTimes 1000t", presets::lda_nytimes()),
    ];
    let mut mf_thresholds = None;
    for (name, app) in workloads {
        let t = auto_thresholds(spec, app, 64);
        println!(
            "{:>24} {:>12.1}:1 {:>12.1}:1",
            name, t.stage2_ratio, t.stage3_ratio
        );
        if name.starts_with("MF") {
            mf_thresholds = Some(t);
        }
    }
    let t = mf_thresholds.expect("MF swept");
    println!(
        "\npaper's hand-tuned values: 1:1 and 15:1 — the automated sweep lands in\n\
         the same neighbourhoods without any cluster measurements.\n"
    );

    // Run a real job under the tuned thresholds.
    let data = netflix_like(
        &MfDataConfig {
            rows: 40,
            cols: 30,
            true_rank: 3,
            observed: 800,
            noise: 0.02,
        },
        33,
    );
    let app = MatrixFactorization::new(MfConfig {
        rows: 40,
        cols: 30,
        rank: 4,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    });
    let cfg = AgileConfig {
        partitions: 4,
        data_blocks: 12,
        seed: 33,
        stage2_threshold: t.stage2_ratio,
        stage3_threshold: t.stage3_ratio,
        ..AgileConfig::default()
    };
    println!("training with tuned thresholds: start 1 reliable + 2 transient, grow to 6");
    let mut job = AgileMlJob::launch(app, data.clone(), cfg, 1, 2)?;
    job.wait_clock(5)?;
    println!("  stage at 2:1 -> {:?}", job.status()?.stage);
    job.add_machines(NodeClass::Transient, 4)?;
    println!("  stage at 6:1 -> {:?}", job.status()?.stage);
    let min = job.status()?.min_clock;
    job.wait_clock(min + 10)?;
    println!("  objective: {:.4}", job.objective(&data)?);
    job.shutdown().map_err(String::from)
}
