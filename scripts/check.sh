#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Run before every push; CI runs the same three commands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo test -q"
cargo test -q

# Bounded fault-injection pass: one fixed seed keeps the wall-clock cost
# small; nightly/deep runs set PROTEUS_CHAOS_FULL=1 instead.
echo "==> chaos suite (fixed seed)"
PROTEUS_CHAOS_SEEDS=3 cargo test -q -p proteus-agileml --test chaos

echo "==> market chaos suite (fixed seed)"
PROTEUS_CHAOS_SEEDS=3 cargo test -q -p proteus --test market_chaos

echo "==> all checks passed"
