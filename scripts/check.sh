#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Run before every push; CI runs the same three commands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo test -q"
cargo test -q

# Bounded fault-injection pass: one fixed seed keeps the wall-clock cost
# small; nightly/deep runs set PROTEUS_CHAOS_FULL=1 instead.
echo "==> chaos suite (fixed seed)"
PROTEUS_CHAOS_SEEDS=3 cargo test -q -p proteus-agileml --test chaos

echo "==> market chaos suite (fixed seed)"
PROTEUS_CHAOS_SEEDS=3 cargo test -q -p proteus --test market_chaos

# Reliable-tier chaos: one fixed seed bounds the wall clock like the
# other chaos passes; PROTEUS_CHAOS_FULL=1 widens the sweep nightly.
echo "==> reliable-tier chaos suite (fixed seed)"
PROTEUS_CHAOS_SEEDS=3 cargo test -q -p proteus-agileml --test reliable_chaos

# Fleet chaos: 120 concurrent jobs through eviction storms, capacity
# droughts, and the full fault stack; every job must reach a typed
# terminal state with no panics, and replays must be bit-identical.
echo "==> fleet chaos suite (fixed seed)"
PROTEUS_CHAOS_SEEDS=3 cargo test -q -p proteus-fleet --test fleet_chaos

# Session restarts from durable checkpoints (scripted scenarios, no
# seed sweep: each run is already a full kill-and-relaunch).
echo "==> restart-from-checkpoint chaos suite"
cargo test -q -p proteus --test restart_chaos

# Library crates report through the obs recorder, not stdout. The only
# allowed direct prints are doc-comment examples and the two
# export-write-failure warnings (a failed PROTEUS_OBS_OUT write has no
# recorder to report into). Bench/figure binaries print by design.
echo "==> no bare println!/eprintln! in library crates"
if grep -rn "println!\|eprintln!" crates/*/src --include="*.rs" \
    | grep -v "^crates/bench/" \
    | grep -v "///" | grep -v "//!" \
    | grep -v "warning: could not write"; then
  echo "error: bare println!/eprintln! in a library crate (use the obs recorder)" >&2
  exit 1
fi

# The JSONL export must be byte-identical across runs and thread counts.
echo "==> obs determinism"
cargo test -q -p proteus-costsim --test obs_determinism

# Recording overhead guard: bench_costsim writes BENCH_obs.json with the
# recorder-on vs recorder-off comparison (< 5% required). Wall-clock
# noise on a loaded CI box can push a passing build over the line, so
# one retry is allowed; two consecutive failures mean a real regression.
echo "==> obs overhead smoke (< 5%)"
obs_ok=0
for attempt in 1 2; do
  PROTEUS_BENCH_STARTS=25 cargo run -q --release -p proteus-bench --bin bench_costsim >/dev/null
  pct=$(sed -n 's/.*"overhead_pct": \([0-9.]*\).*/\1/p' BENCH_obs.json)
  echo "    attempt ${attempt}: overhead ${pct}%"
  if awk -v p="$pct" 'BEGIN { exit !(p <= 5.0) }'; then
    obs_ok=1
    break
  fi
done
if [ "$obs_ok" -ne 1 ]; then
  echo "error: obs recording overhead exceeded 5% twice (see BENCH_obs.json)" >&2
  exit 1
fi

# PS data-plane regression gate: bench_ps writes BENCH_ps.json with the
# batched hot path timed against the per-key baseline (seed hash-map
# store, per-key messages, deep-copied payloads). The batched path must
# never be slower than the baseline; it also self-checks bit-identical
# store state and identical logical wire volume. One retry absorbs
# wall-clock noise on a loaded box.
echo "==> PS data plane bench (batched >= per-key baseline)"
ps_ok=0
for attempt in 1 2; do
  cargo run -q --release -p proteus-bench --bin bench_ps >/dev/null
  spd=$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' BENCH_ps.json)
  echo "    attempt ${attempt}: batched speedup ${spd}x"
  if awk -v s="$spd" 'BEGIN { exit !(s >= 1.0) }'; then
    ps_ok=1
    break
  fi
done
if [ "$ps_ok" -ne 1 ]; then
  echo "error: batched PS data plane slower than the per-key baseline twice (see BENCH_ps.json)" >&2
  exit 1
fi

# Eviction-defense gate: bench_forecast writes BENCH_forecast.json with
# the forecaster's replay accuracy and the proactive (adaptive
# checkpoint) vs reactive (fixed checkpoint) study. Both sides are
# sim-time deterministic, so no retry is needed: the proactive scheme
# must save work over the reactive baseline, and replay recall must stay
# useful — a forecaster that misses evictions defends nothing.
echo "==> eviction defense bench (proactive saves work, recall >= 0.7)"
PROTEUS_BENCH_STARTS=50 cargo run -q --release -p proteus-bench --bin bench_forecast >/dev/null
saved=$(sed -n 's/.*"work_saved_hours": \(-\{0,1\}[0-9.]*\).*/\1/p' BENCH_forecast.json)
recall=$(sed -n 's/.*"recall": \([0-9.]*\).*/\1/p' BENCH_forecast.json)
echo "    work saved ${saved} job-hours, replay recall ${recall}"
if ! awk -v s="$saved" 'BEGIN { exit !(s > 0.0) }'; then
  echo "error: proactive checkpointing saves less work than the reactive baseline (see BENCH_forecast.json)" >&2
  exit 1
fi
if ! awk -v r="$recall" 'BEGIN { exit !(r >= 0.7) }'; then
  echo "error: forecast replay recall below 0.7 (see BENCH_forecast.json)" >&2
  exit 1
fi

# Simnet scale gate: bench_simnet writes BENCH_simnet.json comparing
# the discrete-event core driving a 1000-node broadcast/convergence
# workload against the thread-per-node cluster at 100 nodes. The event
# core runs 10x the fleet and ~10x the messages yet must still beat the
# thread core's wall clock (speedup >= 1.0 here; ~2x in practice). One
# retry absorbs wall-clock noise on a loaded box.
echo "==> simnet scale bench (1000-node event core beats 100-node thread core)"
simnet_ok=0
for attempt in 1 2; do
  cargo run -q --release -p proteus-bench --bin bench_simnet >/dev/null
  nodes=$(sed -n 's/.*"event_nodes": \([0-9]*\).*/\1/p' BENCH_simnet.json)
  spd=$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' BENCH_simnet.json)
  echo "    attempt ${attempt}: ${nodes} event-core nodes, speedup ${spd}x"
  if awk -v n="$nodes" -v s="$spd" 'BEGIN { exit !(n >= 1000 && s >= 1.0) }'; then
    simnet_ok=1
    break
  fi
done
if [ "$simnet_ok" -ne 1 ]; then
  echo "error: event core failed the 1000-node scale gate twice (see BENCH_simnet.json)" >&2
  exit 1
fi

# Fleet scale gate: bench_fleet writes BENCH_fleet.json from a
# 500-trial shared-market sweep. Four things must hold: the sweep
# completes at full trial count, scheduler bookkeeping stays under 5%
# of the sweep's wall clock, the fleet's realized $/work beats the
# per-job-independent baseline, and the outcome is bit-identical
# across thread counts. One retry absorbs wall-clock noise in the
# overhead ratio; the other three legs are deterministic.
echo "==> fleet scale bench (500 trials, sched < 5%, beats per-job baseline)"
fleet_ok=0
for attempt in 1 2; do
  cargo run -q --release -p proteus-bench --bin bench_fleet >/dev/null
  ftrials=$(sed -n 's/.*"trials": \([0-9]*\).*/\1/p' BENCH_fleet.json)
  fpct=$(sed -n 's/.*"overhead_pct": \([0-9.]*\).*/\1/p' BENCH_fleet.json)
  fcpw=$(sed -n 's/.*"fleet_cost_per_work": \([0-9.]*\).*/\1/p' BENCH_fleet.json)
  bcpw=$(sed -n 's/.*"baseline_cost_per_work": \([0-9.]*\).*/\1/p' BENCH_fleet.json)
  fdet=$(sed -n 's/.*"deterministic": \(true\|false\).*/\1/p' BENCH_fleet.json)
  echo "    attempt ${attempt}: ${ftrials} trials, sched ${fpct}%, \$${fcpw}/work vs \$${bcpw}/work baseline, deterministic=${fdet}"
  if [ "$fdet" = "true" ] \
    && awk -v n="$ftrials" 'BEGIN { exit !(n >= 500) }' \
    && awk -v p="$fpct" 'BEGIN { exit !(p < 5.0) }' \
    && awk -v f="$fcpw" -v b="$bcpw" 'BEGIN { exit !(f < b) }'; then
    fleet_ok=1
    break
  fi
done
if [ "$fleet_ok" -ne 1 ]; then
  echo "error: fleet scale gate failed twice (see BENCH_fleet.json)" >&2
  exit 1
fi

echo "==> all checks passed"
