#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Run before every push; CI runs the same three commands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> all checks passed"
