//! Umbrella package hosting the workspace-level examples and integration tests.
