//! Workspace integration tests spanning crates: market ↔ bidbrain ↔
//! costsim consistency, and perfmodel ↔ agileml agreement on stage
//! behavior.

use proteus_bidbrain::{AllocView, AppParams, BetaEstimator, BidBrain, BidBrainConfig};
use proteus_costsim::{run_study, StudyConfig};
use proteus_market::{catalog, CloudProvider, MarketKey, MarketModel, TraceGenerator, Zone};
use proteus_perfmodel::{time_per_iteration, ClusterSpec, Layout};
use proteus_simtime::{SimDuration, SimTime};

fn market() -> MarketKey {
    MarketKey::new(catalog::c4_xlarge(), Zone(0))
}

/// β trained on a trace must agree with the frequency of evictions the
/// provider actually delivers when bidding at that delta on the same
/// trace — the estimator and the billing engine share eviction
/// semantics.
#[test]
fn beta_estimate_matches_provider_eviction_frequency() {
    let horizon = SimDuration::from_hours(24 * 40);
    let gen = TraceGenerator::new(33, MarketModel::default());
    let trace = gen.generate(market(), horizon);

    let delta = 0.01;
    let mut est = BetaEstimator::new();
    est.train(
        market(),
        &trace,
        SimTime::EPOCH,
        SimTime::EPOCH + horizon,
        SimDuration::from_mins(45),
        &[delta],
    );
    let beta = est.beta(market(), delta);

    // Replay the same experiment through the provider.
    let mut evicted = 0usize;
    let mut trials = 0usize;
    let mut t = SimTime::EPOCH;
    while t + SimDuration::from_hours(1) <= SimTime::EPOCH + horizon {
        let mut set = proteus_market::TraceSet::new();
        set.insert(market(), trace.clone());
        let mut provider = CloudProvider::new(set);
        provider.advance_to(t).expect("forward");
        let price = provider.spot_price(market()).expect("trace covers t");
        if provider.request_spot(market(), 1, price + delta).is_ok() {
            trials += 1;
            let events = provider
                .advance_to(t + SimDuration::from_hours(1))
                .expect("forward");
            if events
                .iter()
                .any(|(_, e)| matches!(e, proteus_market::ProviderEvent::Evicted { .. }))
            {
                evicted += 1;
            }
        }
        t += SimDuration::from_hours(7); // Decorrelated samples.
    }
    let measured = evicted as f64 / trials.max(1) as f64;
    assert!(
        (measured - beta).abs() < 0.15,
        "β estimate {beta} vs provider-measured {measured} ({trials} trials)"
    );
}

/// BidBrain's expected cost of holding an allocation for an hour at a
/// given β must bracket the provider-billed cost averaged over many
/// holdings.
#[test]
fn expected_cost_matches_billing_on_average() {
    let horizon = SimDuration::from_hours(24 * 30);
    let gen = TraceGenerator::new(44, MarketModel::default());
    let trace = gen.generate(market(), horizon);
    let delta = 0.005;

    let mut est = BetaEstimator::new();
    est.train(
        market(),
        &trace,
        SimTime::EPOCH,
        SimTime::EPOCH + horizon,
        SimDuration::from_mins(45),
        &[delta],
    );
    let brain = BidBrain::new(AppParams::default(), est, BidBrainConfig::default());

    let mut expected_sum = 0.0;
    let mut billed_sum = 0.0;
    let mut t = SimTime::EPOCH;
    let mut n = 0;
    while t + SimDuration::from_hours(1) <= SimTime::EPOCH + horizon {
        let mut set = proteus_market::TraceSet::new();
        set.insert(market(), trace.clone());
        let mut provider = CloudProvider::new(set);
        provider.advance_to(t).expect("forward");
        let price = provider.spot_price(market()).expect("covered");
        if provider.request_spot(market(), 2, price + delta).is_ok() {
            let view = AllocView {
                market: market(),
                count: 2,
                hourly_price: price,
                bid_delta: Some(delta),
                time_remaining: SimDuration::from_hours(1),
                work_rate: 4.0,
            };
            expected_sum += brain.evaluate(&[view], false).expected_cost;
            provider
                .advance_to(t + SimDuration::from_mins(59))
                .expect("forward");
            billed_sum += provider.account().total_cost();
            n += 1;
        }
        t += SimDuration::from_hours(5);
    }
    assert!(n > 50, "enough samples: {n}");
    let expected = expected_sum / f64::from(n);
    let billed = billed_sum / f64::from(n);
    // Expectation and realized average agree within a loose band (β and
    // prices vary per start).
    assert!(
        (expected - billed).abs() < billed.max(expected) * 0.5 + 0.01,
        "expected {expected} vs billed {billed}"
    );
}

/// The headline claim, end to end: on the same market, the cost study
/// reproduces the paper's ordering with paper-magnitude savings.
#[test]
fn headline_savings_reproduce() {
    let results = run_study(StudyConfig {
        seed: 77,
        train_days: 7,
        eval_days: 10,
        starts: 25,
        job_hours: 2.0,
        ..StudyConfig::default()
    });
    let pct: std::collections::BTreeMap<&str, f64> = results
        .iter()
        .map(|r| (r.scheme.as_str(), r.cost_pct_of_on_demand))
        .collect();
    let proteus = pct["Proteus"];
    let ckpt = pct["Standard+Checkpoint"];
    // Paper: Proteus at ~15-17 % of on-demand (83–85 % savings) and
    // 42–47 % below checkpointing. Allow generous bands for a synthetic
    // market.
    assert!(
        proteus < 30.0,
        "Proteus should save most of the on-demand cost: {proteus}%"
    );
    assert!(
        proteus < ckpt * 0.75,
        "Proteus well below checkpointing: {proteus}% vs {ckpt}%"
    );
}

/// Perfmodel's stage ordering must agree with the stage-selection rule
/// AgileML actually applies: where the model says stage 2 wins, the
/// ratio-based rule picks stage 2, and so on.
#[test]
fn perfmodel_and_stage_selection_agree() {
    let spec = ClusterSpec::cluster_a();
    let app = proteus_perfmodel::presets::mf_netflix_rank1000();

    // At 15:1 (4 reliable, 60 transient) the rule picks stage 2 and the
    // model agrees stage 2 beats stage 1.
    let s1 = time_per_iteration(
        spec,
        app,
        Layout::Stage1 {
            reliable_ps: 4,
            total: 64,
        },
    );
    let s2 = time_per_iteration(
        spec,
        app,
        Layout::Stage2 {
            reliable: 4,
            transient: 60,
            active_ps: 32,
        },
    );
    assert!(s2 < s1);
    assert_eq!(
        proteus_agileml::stage::select_stage(60, 4, 1.0, 15.0),
        proteus_agileml::Stage::Stage2
    );

    // At 63:1 the rule picks stage 3 and the model agrees stage 3 beats
    // stage 2.
    let s2_hi = time_per_iteration(
        spec,
        app,
        Layout::Stage2 {
            reliable: 1,
            transient: 63,
            active_ps: 32,
        },
    );
    let s3_hi = time_per_iteration(
        spec,
        app,
        Layout::Stage3 {
            reliable: 1,
            transient: 63,
            active_ps: 32,
        },
    );
    assert!(s3_hi < s2_hi);
    assert_eq!(
        proteus_agileml::stage::select_stage(63, 1, 1.0, 15.0),
        proteus_agileml::Stage::Stage3
    );

    // At 1:1 the rule stays in stage 1/2 territory and the model agrees
    // stage 3 would be a regression.
    let s2_lo = time_per_iteration(
        spec,
        app,
        Layout::Stage2 {
            reliable: 8,
            transient: 8,
            active_ps: 4,
        },
    );
    let s3_lo = time_per_iteration(
        spec,
        app,
        Layout::Stage3 {
            reliable: 8,
            transient: 8,
            active_ps: 4,
        },
    );
    assert!(s2_lo < s3_lo);
    assert_eq!(
        proteus_agileml::stage::select_stage(8, 8, 1.0, 15.0),
        proteus_agileml::Stage::Stage1
    );
}
