//! Offline stub of `criterion`.
//!
//! Provides the declaration surface (`Criterion::bench_function`,
//! `Bencher::iter`, `black_box`, `criterion_group!`/`criterion_main!`)
//! with a deliberately simple engine: each benchmark is warmed up
//! briefly, then timed over enough iterations to fill a short
//! measurement window, and the mean time per iteration is printed.
//! No statistics, plots, or baselines — just honest wall-clock numbers
//! so `cargo bench` runs offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness handed to each `criterion_group!` function.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Times the routine driven by `f` and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: run the routine until the warm-up window elapses,
        // doubling the batch each time, to size the measurement batch.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            f(&mut b);
            if b.elapsed < Duration::from_millis(1) {
                b.iters = (b.iters * 2).min(1 << 30);
            }
        }

        // Measurement: accumulate whole batches until the window fills.
        let mut total = Duration::ZERO;
        let mut count: u64 = 0;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure {
            f(&mut b);
            total += b.elapsed;
            count += b.iters;
        }

        let per_iter = if count == 0 {
            Duration::ZERO
        } else {
            total / u32::try_from(count.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        };
        println!("{id:<50} {per_iter:>12.2?}/iter  ({count} iters)");
        self
    }
}

/// Drives the closure under test; passed to `bench_function` routines.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the current batch size, recording total time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(5),
            measure: Duration::from_millis(20),
        };
        let mut hits = 0u64;
        c.bench_function("stub/self_test", |b| {
            b.iter(|| {
                hits += 1;
                black_box(hits)
            })
        });
        assert!(hits > 0);
    }

    criterion_group!(smoke, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.warm_up = Duration::from_millis(1);
        c.measure = Duration::from_millis(5);
        c.bench_function("stub/noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        smoke();
    }
}
