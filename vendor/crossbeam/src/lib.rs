//! Offline stub of `crossbeam`.
//!
//! Implements the two surfaces the workspace uses:
//!
//! * [`channel`] — `unbounded`/`bounded` channels with the crossbeam
//!   method set (`send`, `recv`, `try_recv`, `recv_timeout`, cloneable
//!   senders *and* receivers), layered over `std::sync::mpsc` with a
//!   mutex-shared receiver for the multi-consumer cases.
//! * [`thread::scope`] / [`scope`] — scoped spawning, delegated to
//!   `std::thread::scope` (which post-dates and supersedes crossbeam's
//!   own scoped threads). The closure receives the *std* `Scope`, so
//!   `s.spawn(|| …)` takes a zero-argument closure — the one deliberate
//!   API divergence from upstream, noted here because the compiler
//!   would catch any accidental reliance on the upstream form anyway.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel (cloneable, like crossbeam's).
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    /// The receiving half of a channel. Cloneable: clones share the
    /// queue (each message is delivered to exactly one receiver),
    /// matching crossbeam's multi-consumer semantics.
    pub struct Receiver<T> {
        rx: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                rx: Arc::clone(&self.rx),
            }
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.rx.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Drains currently pending messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                tx: Tx::Unbounded(tx),
            },
            Receiver {
                rx: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                tx: Tx::Bounded(tx),
            },
            Receiver {
                rx: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(41).unwrap();
            tx.send(1).unwrap();
            assert_eq!(rx.recv(), Ok(41));
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observable() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(7).unwrap();
            let got = rx2.try_recv();
            assert_eq!(got, Ok(7));
            assert_eq!(rx1.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn bounded_capacity_blocks_cross_thread() {
            let (tx, rx) = bounded(1);
            tx.send(1u8).unwrap();
            let h = std::thread::spawn(move || tx.send(2));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            h.join().unwrap().unwrap();
        }
    }
}

pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

pub use thread::scope;
