//! Offline stub of `parking_lot`.
//!
//! Wraps `std::sync::Mutex`/`RwLock` behind parking_lot's poison-free
//! API (`lock()`/`read()`/`write()` return guards directly). A poisoned
//! std lock is recovered rather than propagated, which matches
//! parking_lot's behavior of not poisoning at all.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
