//! Offline stub of `proptest`.
//!
//! Keeps the property-test surface the workspace uses — the
//! [`proptest!`] macro, `prop_assert*!`, [`strategy::Strategy`] with
//! `prop_map`, range/tuple/`any` strategies, [`collection`] and
//! [`sample`] — but trades proptest's failure *shrinking* for
//! simplicity: each case draws values from a deterministic per-test
//! RNG and a failing case panics with the ordinary `assert!` message.
//! Seeds derive from the test's module path + name, so failures
//! reproduce exactly on re-run.

pub mod test_runner {
    /// Runner configuration; only the case count is honored.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of value tuples drawn and checked per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` iterations.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic generator backing every strategy draw
    /// (SplitMix64 over an FNV-1a hash of the test's identity).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG whose stream is a pure function of `identity`.
        pub fn deterministic(identity: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in identity.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)` with 53-bit resolution.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the deterministic RNG.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
    }

    /// Types with a canonical full-domain strategy (see [`any`]).
    pub trait Arbitrary {
        /// Draws an unconstrained value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() - 0.5) * 2.0e6
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Length bounds shared by the container strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_excl: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut crate::test_runner::TestRng) -> usize {
        if self.max_excl <= self.min {
            self.min
        } else {
            self.min + rng.below((self.max_excl - self.min) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_excl: exact + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max_excl: r.end.max(r.start),
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use crate::SizeRange;
    use std::collections::BTreeMap;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`. Duplicate key draws collapse, so
    /// the generated map's length is *at most* the drawn size.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    /// Generates maps with keys from `keys` and values from `values`.
    pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.draw(rng);
            (0..len)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use crate::SizeRange;

    /// Strategy drawing an order-preserving subsequence of a base vector.
    #[derive(Debug, Clone)]
    pub struct Subsequence<T> {
        base: Vec<T>,
        size: SizeRange,
    }

    /// Picks `size`-many elements of `base`, keeping their relative order.
    pub fn subsequence<T: Clone>(base: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            base,
            size: size.into(),
        }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let len = self.size.draw(rng).min(self.base.len());
            // Partial Fisher–Yates over the index set, then restore order.
            let mut idx: Vec<usize> = (0..self.base.len()).collect();
            for i in 0..len {
                let j = i + rng.below((idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            let mut picked = idx[..len].to_vec();
            picked.sort_unstable();
            picked.iter().map(|&i| self.base[i].clone()).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a property holds for the current case; panics (with the
/// formatted message, if given) on failure instead of shrinking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that draws `cases` value tuples from a
/// deterministic RNG and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _ in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..2000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..3.5), &mut rng);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn subsequence_preserves_order_and_membership() {
        let mut rng = TestRng::deterministic("subseq");
        for _ in 0..500 {
            let s = crate::sample::subsequence(vec![0u32, 1, 2, 3], 0..4);
            let v = Strategy::generate(&s, &mut rng);
            assert!(v.len() < 4);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn collections_honor_size() {
        let mut rng = TestRng::deterministic("coll");
        let exact = crate::collection::vec(0u64..10, 5usize);
        assert_eq!(Strategy::generate(&exact, &mut rng).len(), 5);
        let m = crate::collection::btree_map(0u32..4, 0.0f32..1.0, 0..8);
        for _ in 0..200 {
            let map = Strategy::generate(&m, &mut rng);
            assert!(map.len() <= 7);
            assert!(map.keys().all(|k| *k < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: tuples, any, prop_map, trailing commas.
        #[test]
        fn macro_end_to_end(
            pair in (0u64..16, -1.0f32..1.0),
            flag in any::<bool>(),
            doubled in (1u32..10).prop_map(|x| x * 2),
        ) {
            prop_assert!(pair.0 < 16);
            prop_assert!(pair.1.abs() <= 1.0);
            prop_assert!(flag || !flag);
            prop_assert_eq!(doubled % 2, 0, "prop_map output {}", doubled);
        }
    }

    #[test]
    fn deterministic_per_identity() {
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("id");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("id");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::deterministic("other");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }
}
