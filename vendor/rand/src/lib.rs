//! Offline stub of the `rand` crate.
//!
//! The build container has no network access and no cargo registry
//! cache, so the real `rand` cannot be fetched. This stub implements
//! the exact API surface the workspace uses — [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`] — over a xoshiro256** generator seeded through
//! the SplitMix64 finalizer.
//!
//! Determinism is the contract the workspace relies on (every
//! experiment is replayed from a 64-bit seed); statistical quality
//! beyond "good enough for synthetic traces" is not. The stream
//! produced differs from upstream `rand`'s `StdRng`, which is
//! explicitly permitted by upstream ("StdRng is not reproducible
//! across versions").

use std::ops::Range;

pub mod rngs {
    pub use crate::StdRng;
}

/// Core generator trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array upstream; mirrored here).
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (SplitMix64 expansion,
    /// matching the construction upstream documents).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws a value in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Widening-multiply rejection-free mapping (Lemire); the
                // tiny modulo bias is irrelevant at the spans used here.
                let word = rng.next_u64() as u128;
                low.wrapping_add(((word * span) >> 64) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let word = rng.next_u64() as u128;
                (low as i128 + ((word * span) >> 64) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        low + unit * (high - low)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// The user-facing generator trait.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// xoshiro256** — the default generator behind [`rngs::StdRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // The all-zero state is a fixed point of xoshiro; escape it.
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let g = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_covers_primitives() {
        let mut rng = StdRng::seed_from_u64(11);
        let _: u32 = rng.gen();
        let _: u64 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
