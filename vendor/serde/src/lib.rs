//! Offline stub of the `serde` facade.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize`; nothing
//! binds on the traits or drives a serializer (trace persistence goes
//! through the dependency-free CSV codec in `proteus-market::io`). The
//! traits here are empty markers and the derive macros (re-exported
//! from the stub `serde_derive`) expand to nothing, which keeps every
//! `#[derive(Serialize, Deserialize)]` in the tree compiling without
//! network access. Swapping the real serde back in later is a
//! one-line `[patch.crates-io]` removal.

/// Marker for types declared serializable.
pub trait Serialize {}

/// Marker for types declared deserializable.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing.
pub trait DeserializeOwned: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialization half of the data model (empty in the stub).
pub mod ser {
    pub use crate::Serialize;
}

/// Deserialization half of the data model (empty in the stub).
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}
