//! Offline stub of `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` throughout as a
//! forward-looking marker but never actually serializes anything (no
//! `serde_json`, no bincode, no trait bounds on the serde traits). The
//! container cannot fetch the real implementation, so these derives
//! expand to nothing — which type-checks precisely because no code
//! consumes the impls. The `serde` attribute is still registered so
//! field/container attributes would not break compilation if added.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
